"""Random query and database generators.

These generators drive the property-based tests and the benchmark harness.
They produce queries in the exact fragment the paper studies — disjunctive
queries with negated subgoals, constants and comparisons, carrying a single
aggregate term — with knobs for every structural dimension (number of
disjuncts, negation and comparison density, predicate arities, whether the
query must be quasilinear, which aggregation function to use).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..aggregates.functions import get_function
from ..datalog.atoms import Comparison, ComparisonOp, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.database import Database
from ..datalog.queries import AggregateTerm, Query
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain, NumericValue


@dataclass
class QueryProfile:
    """Structural knobs for the random query generator."""

    predicates: dict[str, int] = field(default_factory=lambda: {"p": 2, "r": 1, "s": 2})
    grouping_variables: int = 1
    aggregation_function: Optional[str] = "sum"
    max_disjuncts: int = 2
    max_positive_atoms: int = 3
    max_negated_atoms: int = 1
    max_comparisons: int = 2
    constants: Sequence[NumericValue] = (0, 1, 5)
    allow_negation: bool = True
    quasilinear_only: bool = False
    comparison_operators: Sequence[str] = ("<", "<=", ">", ">=", "!=")


class QueryGenerator:
    """Generate random queries according to a :class:`QueryProfile`."""

    def __init__(self, profile: Optional[QueryProfile] = None, seed: int = 2001):
        self.profile = profile or QueryProfile()
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, name: str = "q") -> Query:
        profile = self.profile
        grouping = [Variable(f"x{i}") for i in range(profile.grouping_variables)]
        aggregate = None
        aggregation_variables: list[Variable] = []
        if profile.aggregation_function is not None:
            function = get_function(profile.aggregation_function)
            arity = function.input_arity if function.input_arity is not None else 1
            aggregation_variables = [Variable(f"y{i}") for i in range(arity)]
            aggregate = AggregateTerm(function.name, tuple(aggregation_variables))
        disjunct_count = 1 if profile.quasilinear_only else self.rng.randint(1, profile.max_disjuncts)
        disjuncts = []
        for _ in range(disjunct_count):
            disjuncts.append(self._condition(grouping, aggregation_variables))
        return Query(name, tuple(grouping), tuple(disjuncts), aggregate)

    def _condition(self, grouping: list[Variable], aggregation: list[Variable]) -> Condition:
        profile = self.profile
        rng = self.rng
        required = list(grouping) + list(aggregation)
        extra_variables = [Variable(f"z{i}") for i in range(rng.randint(0, 2))]
        variable_pool = required + extra_variables

        literals: list = []
        used_predicates: set[str] = set()
        covered: set[Variable] = set()

        predicate_names = sorted(profile.predicates)
        atom_count = max(1, rng.randint(1, profile.max_positive_atoms))
        attempts = 0
        while (covered < set(required) or len([l for l in literals if isinstance(l, RelationalAtom)]) < atom_count) and attempts < 20:
            attempts += 1
            candidates = (
                [name for name in predicate_names if name not in used_predicates]
                if profile.quasilinear_only
                else predicate_names
            )
            if not candidates:
                break
            predicate = rng.choice(candidates)
            arity = profile.predicates[predicate]
            uncovered = [v for v in required if v not in covered]
            arguments: list[Term] = []
            for position in range(arity):
                if uncovered and (position < len(uncovered) or rng.random() < 0.6):
                    choice = uncovered.pop(0) if uncovered else rng.choice(variable_pool)
                elif rng.random() < 0.15 and profile.constants:
                    choice = Constant(rng.choice(list(profile.constants)))
                else:
                    choice = rng.choice(variable_pool)
                arguments.append(choice)
            atom = RelationalAtom(predicate, tuple(arguments))
            literals.append(atom)
            used_predicates.add(predicate)
            covered |= atom.variables()

        # Ensure every required variable is covered by widening the last atom.
        missing = [v for v in required if v not in covered]
        if missing:
            predicate = predicate_names[0]
            arity = profile.predicates[predicate]
            arguments = list(missing[:arity])
            while len(arguments) < arity:
                arguments.append(rng.choice(variable_pool))
            literals.append(RelationalAtom(predicate, tuple(arguments)))
            covered |= set(arguments) & set(variable_pool)

        bound_variables = sorted(covered, key=lambda v: v.name)
        if profile.allow_negation and not profile.quasilinear_only:
            for _ in range(rng.randint(0, profile.max_negated_atoms)):
                predicate = rng.choice(predicate_names)
                arity = profile.predicates[predicate]
                arguments = tuple(rng.choice(bound_variables) for _ in range(arity))
                literals.append(RelationalAtom(predicate, arguments, negated=True))
        elif profile.allow_negation and profile.quasilinear_only:
            unused = [name for name in predicate_names if name not in used_predicates]
            for _ in range(rng.randint(0, profile.max_negated_atoms)):
                if not unused:
                    break
                predicate = unused.pop()
                arity = profile.predicates[predicate]
                arguments = tuple(rng.choice(bound_variables) for _ in range(arity))
                literals.append(RelationalAtom(predicate, arguments, negated=True))

        for _ in range(rng.randint(0, profile.max_comparisons)):
            left = rng.choice(bound_variables)
            if rng.random() < 0.5 and profile.constants:
                right: Term = Constant(rng.choice(list(profile.constants)))
            else:
                right = rng.choice(bound_variables)
            operator = ComparisonOp.from_symbol(rng.choice(list(profile.comparison_operators)))
            if left != right or operator not in (ComparisonOp.LT, ComparisonOp.GT, ComparisonOp.NE):
                literals.append(Comparison(left, operator, right))

        return Condition(tuple(literals))

    def query_pair(self, name: str = "q") -> tuple[Query, Query]:
        """A pair of queries over the same head, useful for equivalence
        workloads.  With probability one half the second query is a variable
        renaming of the first (hence equivalent); otherwise it is generated
        independently."""
        first = self.query(name)
        if self.rng.random() < 0.5:
            renaming = {
                variable: Variable(variable.name + "_r")
                for variable in sorted(first.variables(), key=lambda v: v.name)
                if variable not in first.grouping_variables()
                and variable not in first.aggregation_variables()
            }
            return first, first.rename_variables(renaming)
        return first, self.query(name)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def database(
        self,
        domain: Domain = Domain.RATIONALS,
        max_facts: int = 12,
        values: Optional[Sequence[NumericValue]] = None,
    ) -> Database:
        profile = self.profile
        rng = self.rng
        pool: list[NumericValue] = list(values) if values is not None else list(profile.constants)
        pool.extend(range(-2, 4))
        if domain.is_dense:
            pool.append(Fraction(1, 2))
        facts = []
        predicate_names = sorted(profile.predicates)
        for _ in range(rng.randint(0, max_facts)):
            predicate = rng.choice(predicate_names)
            arity = profile.predicates[predicate]
            row = tuple(rng.choice(pool) for _ in range(arity))
            facts.append((predicate, row))
        return Database(facts)


def linear_chain_query(
    length: int, function: str = "sum", name: str = "q", with_comparisons: bool = True
) -> Query:
    """A linear query joining a chain of ``length`` distinct binary predicates:
    ``q(x0, α(y)) ← e0(x0, x1), e1(x1, x2), …, e_{n-1}(x_{n-1}, y)``.

    Used by the quasilinear scaling benchmark (Corollary 7.5): the query is
    linear, so equivalence with a renamed copy must be decided in polynomial
    time however large ``length`` grows.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    variables = [Variable(f"x{i}") for i in range(length)] + [Variable("y")]
    literals: list = []
    for index in range(length):
        literals.append(RelationalAtom(f"e{index}", (variables[index], variables[index + 1])))
    if with_comparisons:
        literals.append(Comparison(variables[-1], ComparisonOp.GE, Constant(0)))
    aggregate = AggregateTerm(function, (Variable("y"),)) if function not in ("count", "parity") else AggregateTerm(function, ())
    return Query(name, (variables[0],), (Condition(tuple(literals)),), aggregate)


def random_warehouse_database(
    seed: int,
    max_stores: int = 4,
    max_products: int = 5,
    max_sales: int = 24,
) -> Database:
    """A random instance over the warehouse schema, for differential tests of
    the view-rewriting subsystem.

    Unlike :func:`repro.workloads.scenarios.build_warehouse` this generator
    aims for adversarial shape rather than realism: relations may be empty,
    returns may reference sales that never happened, amounts repeat (so
    duplicate-sensitivity bugs surface), and negative amounts appear (so
    ``sum`` cannot be confused with ``count`` scaling).
    """
    rng = random.Random(seed)
    facts: list[tuple[str, tuple]] = []
    stores = rng.randint(0, max_stores)
    products = rng.randint(1, max_products)
    for _ in range(rng.randint(0, max_sales)):
        facts.append(
            (
                "sales",
                (rng.randint(1, max(1, stores)), rng.randint(1, products), rng.choice(
                    (-3, -1, 0, 1, 1, 2, 5, 10)
                )),
            )
        )
    for _ in range(rng.randint(0, 6)):
        facts.append(("returns", (rng.randint(1, max(1, stores)), rng.randint(1, products))))
    for product in range(1, products + 1):
        if rng.random() < 0.25:
            facts.append(("discontinued", (product,)))
    for store in range(1, max(1, stores) + 1):
        if rng.random() < 0.5:
            facts.append(("premium_store", (store,)))
    return Database(facts)


def renamed_copy(query: Query, suffix: str = "_c") -> Query:
    """A copy of the query with every non-head variable renamed — equivalent to
    the original by construction."""
    head_variables = query.grouping_variables() | set(query.aggregation_variables())
    renaming = {
        variable: Variable(variable.name + suffix)
        for variable in sorted(query.variables(), key=lambda v: v.name)
        if variable not in head_variables
    }
    return query.rename_variables(renaming)
