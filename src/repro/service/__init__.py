"""Equivalence-as-a-service: a multi-tenant asyncio server over Workspace.

The library's session layer (:mod:`repro.session`) made the *session* the
unit of reuse; this package makes the session a *served resource*: a
stdlib-only HTTP/JSON front end hosting named tenant workspaces, each with
its own catalog, verdict caches, and persistent worker pool.

Layering (each module one concern):

* :mod:`~repro.service.protocol` — typed requests, JSON payloads,
  structured error codes mapped from :mod:`repro.errors`.
* :mod:`~repro.service.admission` — per-tenant budgets
  (``REPRO_SERVICE_*``) checked before work queues.
* :mod:`~repro.service.tenants` — the tenant directory: workspace +
  per-tenant mutation lock, LRU-evicted through ``Workspace.close()``.
* :mod:`~repro.service.snapshots` — frozen copy-on-write snapshots of each
  tenant's settled state, so read-only GETs skip the writer lock.
* :mod:`~repro.service.app` — the asyncio server, routing, and the
  mutation/read concurrency model; ``python -m repro.service`` serves it.

Run ``python -m repro.service --port 8765`` and talk JSON::

    curl -s localhost:8765/healthz
    curl -s -XPOST localhost:8765/tenant/t1/add \\
         -d '{"query": "q(x, sum(y)) :- p(x, y)"}'
    curl -s -XPOST localhost:8765/tenant/t1/equivalences
"""

from __future__ import annotations

from ..caches import run_registered_clears
from .admission import AdmissionError, AdmissionPolicy
from .app import ReproService, ServiceHandle, start_in_thread
from .protocol import (
    AddRequest,
    ExplainRequest,
    ProtocolError,
    RewriteRequest,
    RouteError,
    ViewRequest,
    error_payload,
)
from .snapshots import TenantSnapshot
from .tenants import Tenant, TenantRegistry, UnknownTenantError


def clear_service_caches() -> None:
    """Reset the service layer's module-level state: close every tenant
    workspace in the LRU and drop every published snapshot.  The caches
    register under this entry (:mod:`repro.caches`), so the reset stays
    discoverable by the cache-discipline checker."""
    run_registered_clears("clear_service_caches")


__all__ = [
    "AddRequest",
    "AdmissionError",
    "AdmissionPolicy",
    "ExplainRequest",
    "ProtocolError",
    "ReproService",
    "RewriteRequest",
    "RouteError",
    "ServiceHandle",
    "Tenant",
    "TenantRegistry",
    "TenantSnapshot",
    "UnknownTenantError",
    "ViewRequest",
    "clear_service_caches",
    "error_payload",
    "start_in_thread",
]
