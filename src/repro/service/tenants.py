"""Named tenant workspaces with LRU lifetime management.

A tenant is one named :class:`~repro.session.Workspace` plus the
serialization primitive its mutations run under: an ``asyncio.Lock`` (one
writer at a time per tenant; different tenants mutate concurrently) and
the admission bookkeeping (``queued`` mutations waiting on the lock).

Tenants live in a process-wide LRU (:data:`_TENANT_LRU`, an
``OrderedDict`` in access order) so a long-lived server holds at most
``max_tenants`` warm workspaces per registry: creating a tenant beyond
capacity evicts the least-recently-used one through the single teardown
path — :meth:`Workspace.close` (pool terminated, per-session caches
dropped) plus :func:`repro.service.snapshots.drop`.  The LRU is registered
with the PR 8 cache registry under ``clear_service_caches``, whose clear
closes every surviving workspace the same way.

Each :class:`TenantRegistry` namespaces its keys with a process-unique
token, so independent registries (one per service instance; many per test
run) share the module-level store without colliding, and a registry's
:meth:`~TenantRegistry.close` tears down exactly its own tenants.

Engine pinning: the registry passes its ``engine`` into every
``Workspace`` it creates and *never* touches the process-global engine
mode — ``set_engine`` / ``engine_scope`` would leak one tenant's mode into
every other tenant's decisions (the ``engine-threading`` checker of
:mod:`repro.analysis` forbids both calls anywhere under ``service/``).
"""

from __future__ import annotations

import asyncio
import itertools
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..caches import register_cache
from ..errors import ReproError
from ..obs import REGISTRY as _OBS
from ..session import Workspace
from ..store.disk import shared_store
from . import snapshots
from .admission import AdmissionPolicy
from .protocol import ProtocolError


class UnknownTenantError(ReproError):
    """A request naming a tenant the registry does not hold (never created,
    or evicted/deleted since)."""

    service_code = "unknown-tenant"
    http_status = 404


#: Tenant names are URL path segments and metric-name segments, so they are
#: restricted to a dot-free identifier alphabet.
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def validate_tenant_name(name: str) -> str:
    """``name`` when it is a usable tenant identifier; 400 otherwise."""
    if not _NAME_RE.match(name):
        raise ProtocolError(
            f"tenant name {name!r} must match [A-Za-z0-9_-]{{1,64}}"
        )
    return name


@dataclass
class Tenant:
    """One named workspace plus its serialization state."""

    name: str
    #: Registry-qualified store key (``"<token>:<name>"``).
    key: str
    workspace: Workspace
    #: Serializes mutations; read-only snapshot GETs never take it.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Mutation ordinal of the last published snapshot.
    version: int = 0
    #: Mutations currently queued on (or holding) the lock.
    queued: int = 0
    #: Workspace verdict-cache hits already exported to the metrics
    #: registry (the per-tenant counter publishes deltas, not totals).
    verdict_hits_reported: int = 0


#: The process-wide tenant LRU, in access order (least recent first).
#: Mutated only from event-loop threads through a TenantRegistry.
_TENANT_LRU: "OrderedDict[str, Tenant]" = OrderedDict()


def _close_all_tenants() -> None:
    while _TENANT_LRU:
        _key, tenant = _TENANT_LRU.popitem(last=False)
        tenant.workspace.close()


register_cache(
    "service/tenants.py:_TENANT_LRU", "clear_service_caches", _close_all_tenants
)

#: Process-unique registry tokens (the key namespace per registry).
_REGISTRY_TOKENS = itertools.count(1)


class TenantRegistry:
    """The tenant directory of one service instance."""

    def __init__(
        self,
        *,
        policy: AdmissionPolicy,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        self._token = next(_REGISTRY_TOKENS)
        self._policy = policy
        self._workers = workers
        self._engine = engine

    # ------------------------------------------------------------------
    # Key namespace
    # ------------------------------------------------------------------
    def _key(self, name: str) -> str:
        return f"{self._token}:{name}"

    def _mine(self) -> list[tuple[str, Tenant]]:
        prefix = f"{self._token}:"
        return [
            (key, tenant)
            for key, tenant in _TENANT_LRU.items()
            if key.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # Lookup / creation
    # ------------------------------------------------------------------
    def get(self, name: str) -> Tenant:
        """The existing tenant ``name`` (marked most recently used)."""
        tenant = _TENANT_LRU.get(self._key(name))
        if tenant is None:
            raise UnknownTenantError(f"no tenant named {name!r}")
        _TENANT_LRU.move_to_end(self._key(name))
        return tenant

    def get_or_create(self, name: str) -> Tenant:
        """The tenant ``name``, created (evicting the LRU tenant beyond
        ``max_tenants``) when absent."""
        validate_tenant_name(name)
        key = self._key(name)
        tenant = _TENANT_LRU.get(key)
        if tenant is not None:
            _TENANT_LRU.move_to_end(key)
            return tenant
        mine = self._mine()
        while len(mine) >= self._policy.max_tenants:
            stale_key, stale = mine.pop(0)
            self._teardown(stale_key, stale)
            _OBS.inc("service.tenant.evictions")
        tenant = Tenant(
            name=name,
            key=key,
            workspace=Workspace(
                workers=self._workers,
                max_subsets=self._policy.max_subsets,
                engine=self._engine,
                # Every tenant shares the one process-wide verdict store
                # (disk-backed when REPRO_STORE_PATH is set, in-memory
                # otherwise): tenant A's settled cells serve tenant B's
                # renamed duplicates without re-running a sweep.
                store=shared_store(),
            ),
        )
        _TENANT_LRU[key] = tenant
        _OBS.inc("service.tenant.creations")
        return tenant

    def evict(self, name: str) -> bool:
        """Tear down tenant ``name``; ``False`` when it does not exist."""
        key = self._key(name)
        tenant = _TENANT_LRU.get(key)
        if tenant is None:
            return False
        self._teardown(key, tenant)
        return True

    def _teardown(self, key: str, tenant: Tenant) -> None:
        _TENANT_LRU.pop(key, None)
        snapshots.drop(key)
        tenant.workspace.close()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """This registry's tenant names, least recently used first."""
        return tuple(tenant.name for _key, tenant in self._mine())

    def __len__(self) -> int:
        return len(self._mine())

    def __contains__(self, name: str) -> bool:
        return self._key(name) in _TENANT_LRU

    def close(self) -> None:
        """Tear down every tenant this registry owns."""
        for key, tenant in self._mine():
            self._teardown(key, tenant)
