"""Per-tenant admission control: budgets checked before work is queued.

A multi-tenant server cannot let one tenant grow a catalog without bound,
queue mutations faster than the worker pool drains them, or submit sweeps
whose subset enumeration runs for minutes: each of those starves every
other tenant of the shared process.  :class:`AdmissionPolicy` is the small
set of knobs bounding that, checked *before* a request occupies the tenant
lock or a pool worker:

* ``max_tenants`` — registry capacity; beyond it the least-recently-used
  tenant is *evicted* (workspace closed, snapshot dropped) rather than the
  new one rejected, matching cache semantics: tenants are cheap to rebuild
  from their query texts.
* ``max_queries`` — catalog size per tenant; the ``add`` that would exceed
  it is rejected.
* ``max_subsets`` — the sweep search budget threaded into each tenant's
  :class:`~repro.session.Workspace`; a sweep that exceeds it fails as a
  structured 429 (``search-budget-exceeded``) instead of running away.
* ``max_queued`` — mutations a tenant may have waiting on its lock; beyond
  it new mutations are rejected immediately (429 ``queue-full``) so a slow
  sweep cannot pile up unbounded work behind itself.

Every limit reads from ``REPRO_SERVICE_<NAME>`` via :meth:`from_env`, and
every rejection is an :class:`AdmissionError` — a structured 429 whose
``code`` names the exhausted budget.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import ReproError

#: Prefix of every service configuration environment variable.
ENV_PREFIX = "REPRO_SERVICE_"


class AdmissionError(ReproError):
    """A request rejected by admission control (never started executing).

    ``code`` names the exhausted budget (``"query-budget"``,
    ``"queue-full"``); the HTTP layer serializes this as a 429 with that
    code, so clients can tell back-off-and-retry (``queue-full``) from
    reduce-your-catalog (``query-budget``) apart."""

    http_status = 429

    def __init__(self, code: str, message: str) -> None:
        self.service_code = code
        super().__init__(message)


def _read_limit(env: Mapping[str, str], name: str, default: int) -> int:
    raw = env.get(ENV_PREFIX + name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ReproError(
            f"{ENV_PREFIX + name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ReproError(f"{ENV_PREFIX + name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class AdmissionPolicy:
    """The per-tenant budgets one service instance enforces."""

    max_tenants: int = 32
    max_queries: int = 256
    max_subsets: int = 2_000_000
    max_queued: int = 8

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "AdmissionPolicy":
        """A policy from ``REPRO_SERVICE_MAX_TENANTS`` /
        ``..._MAX_QUERIES`` / ``..._MAX_SUBSETS`` / ``..._MAX_QUEUED``
        (unset variables keep the dataclass defaults)."""
        source = os.environ if env is None else env
        return cls(
            max_tenants=_read_limit(source, "MAX_TENANTS", cls.max_tenants),
            max_queries=_read_limit(source, "MAX_QUERIES", cls.max_queries),
            max_subsets=_read_limit(source, "MAX_SUBSETS", cls.max_subsets),
            max_queued=_read_limit(source, "MAX_QUEUED", cls.max_queued),
        )

    # ------------------------------------------------------------------
    # The checks (raise AdmissionError; never mutate anything)
    # ------------------------------------------------------------------
    def admit_query(self, catalog_size: int) -> None:
        """Admit adding one query to a catalog currently holding
        ``catalog_size``."""
        if catalog_size >= self.max_queries:
            raise AdmissionError(
                "query-budget",
                f"tenant catalog is at its {self.max_queries}-query budget; "
                "evict the tenant (DELETE) or raise REPRO_SERVICE_MAX_QUERIES",
            )

    def admit_mutation(self, queued: int) -> None:
        """Admit queueing one more mutation behind ``queued`` waiting ones."""
        if queued >= self.max_queued:
            raise AdmissionError(
                "queue-full",
                f"tenant already has {queued} mutations queued "
                f"(budget {self.max_queued}); retry after the queue drains",
            )
