"""The service wire protocol: typed requests, JSON payloads, error codes.

The HTTP front end (:mod:`repro.service.app`) is a thin framing layer; this
module is where the *meaning* of a request or response lives, so the codec
is testable without a socket:

* **Requests** are frozen dataclasses (:class:`AddRequest`,
  :class:`ViewRequest`, :class:`RewriteRequest`, :class:`ExplainRequest`)
  with ``from_payload`` constructors that validate a decoded JSON object
  field by field.  Validation failures raise :class:`ProtocolError`, which
  serializes as a structured 400 like every other error.
* **Responses** are plain ``dict[str, object]`` payloads built by the
  ``*_payload`` functions from the library's own result objects
  (:class:`~repro.core.equivalence.EquivalenceResult`,
  :class:`~repro.obs.CellExplanation`,
  :class:`~repro.rewriting.engine.RewritingReport`,
  :class:`~repro.session.WorkspaceStats`) — no result object crosses the
  wire un-translated.
* **Errors** map from the :mod:`repro.errors` hierarchy to
  ``(HTTP status, {"error": {"code", "message", "type"}})`` through
  :data:`_ERROR_CODES` (most specific type first).  Service-layer errors
  (admission rejections, unknown tenants, bad routes) instead carry their
  own ``service_code`` / ``http_status`` class attributes, which
  :func:`error_payload` honors before consulting the table.  An error whose
  type sets ``retryable = True`` (:class:`~repro.errors.WorkerCrashError`)
  additionally ships ``retryable`` and ``retry_after_s`` — the client
  contract for "the pool died, re-send and the executor will have
  re-forked".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.equivalence import EquivalenceResult
from ..errors import (
    DomainError,
    EvaluationError,
    KernelVerificationError,
    MalformedQueryError,
    QuerySyntaxError,
    ReproError,
    RewritingError,
    SearchSpaceBudgetError,
    UndecidableError,
    UnsafeQueryError,
    UnsatisfiableOrderingError,
    UnsupportedAggregateError,
    WorkerCrashError,
)
from ..obs import CellExplanation
from ..rewriting.candidates import RejectedCandidate
from ..rewriting.engine import RewritingReport, VerifiedRewriting
from ..session import WorkspaceStats

#: Seconds a client should wait before re-sending a retryable failure; by
#: then the persistent executor has discarded the dead pool and the next
#: run re-forks a fresh one.
RETRY_AFTER_S = 1


class ProtocolError(ReproError):
    """A request that fails structural validation: not a JSON object, a
    missing or mistyped field, an unusable tenant name."""

    service_code = "bad-request"
    http_status = 400


class RouteError(ProtocolError):
    """A method/path combination the service does not serve."""

    service_code = "not-found"
    http_status = 404


#: :mod:`repro.errors` type → (code, HTTP status); first ``isinstance``
#: match wins, so specific types precede :class:`ReproError`.  A dead pool
#: is the one 503 (retryable — the executor self-heals); a blown sweep
#: budget is an admission-style 429 (the request was well-formed but over
#: the tenant's configured search budget).
_ERROR_CODES: tuple[tuple[type[ReproError], tuple[str, int]], ...] = (
    (WorkerCrashError, ("worker-crashed", 503)),
    (SearchSpaceBudgetError, ("search-budget-exceeded", 429)),
    (QuerySyntaxError, ("query-syntax", 400)),
    (UnsafeQueryError, ("unsafe-query", 400)),
    (MalformedQueryError, ("malformed-query", 400)),
    (DomainError, ("bad-domain", 400)),
    (UnsupportedAggregateError, ("unsupported-aggregate", 400)),
    (UndecidableError, ("undecidable", 422)),
    (UnsatisfiableOrderingError, ("unsatisfiable-ordering", 400)),
    (RewritingError, ("rewriting", 400)),
    (EvaluationError, ("evaluation-failed", 500)),
    (KernelVerificationError, ("kernel-verification", 500)),
    (ReproError, ("repro-error", 400)),
)


def error_payload(error: ReproError) -> tuple[int, dict[str, object]]:
    """``(HTTP status, body)`` for a library or service error."""
    code: str = "internal"
    status: int = 500
    own_code = getattr(error, "service_code", None)
    own_status = getattr(error, "http_status", None)
    if isinstance(own_code, str) and isinstance(own_status, int):
        code, status = own_code, own_status
    else:
        for error_type, (mapped_code, mapped_status) in _ERROR_CODES:
            if isinstance(error, error_type):
                code, status = mapped_code, mapped_status
                break
    detail: dict[str, object] = {
        "code": code,
        "message": str(error),
        "type": type(error).__name__,
    }
    if bool(getattr(error, "retryable", False)):
        detail["retryable"] = True
        detail["retry_after_s"] = RETRY_AFTER_S
    return status, {"error": detail}


# ----------------------------------------------------------------------
# Request decoding
# ----------------------------------------------------------------------
def decode_body(body: bytes) -> dict[str, object]:
    """A request body as a JSON object (empty body → empty object)."""
    if not body:
        return {}
    try:
        decoded: object = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from None
    if not isinstance(decoded, dict):
        raise ProtocolError("request body must be a JSON object")
    return {str(key): value for key, value in decoded.items()}


def _required_str(payload: Mapping[str, object], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"field {name!r} must be a non-empty string")
    return value


def _optional_str(payload: Mapping[str, object], name: str) -> Optional[str]:
    value = payload.get(name)
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"field {name!r} must be a non-empty string when given")
    return value


def _optional_int(payload: Mapping[str, object], name: str) -> Optional[int]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ProtocolError(f"field {name!r} must be a non-negative integer when given")
    return value


@dataclass(frozen=True)
class AddRequest:
    """``POST /tenant/{id}/add`` — ingest one query into the catalog."""

    query: str
    name: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "AddRequest":
        return cls(
            query=_required_str(payload, "query"),
            name=_optional_str(payload, "name"),
        )


@dataclass(frozen=True)
class ViewRequest:
    """``POST /tenant/{id}/view`` — register a view, either as one
    ``CREATE VIEW ... AS SELECT ...`` statement (``sql``) or as a
    ``(name, definition)`` Datalog pair."""

    sql: Optional[str] = None
    name: Optional[str] = None
    definition: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ViewRequest":
        sql = _optional_str(payload, "sql")
        name = _optional_str(payload, "name")
        definition = _optional_str(payload, "definition")
        if sql is not None and (name is not None or definition is not None):
            raise ProtocolError("pass either 'sql' or 'name'+'definition', not both")
        if sql is None and (name is None or definition is None):
            raise ProtocolError("a view needs 'sql' or both 'name' and 'definition'")
        return cls(sql=sql, name=name, definition=definition)


@dataclass(frozen=True)
class RewriteRequest:
    """``POST /tenant/{id}/rewrite`` — rewrite a query over the tenant's
    registered views."""

    query: str
    limit: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RewriteRequest":
        return cls(
            query=_required_str(payload, "query"),
            limit=_optional_int(payload, "limit"),
        )


@dataclass(frozen=True)
class ExplainRequest:
    """``GET /tenant/{id}/explain?first=a&second=b`` — provenance of one
    settled cell."""

    first: str
    second: str

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ExplainRequest":
        return cls(
            first=_required_str(payload, "first"),
            second=_required_str(payload, "second"),
        )


# ----------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------
def result_payload(result: EquivalenceResult) -> dict[str, object]:
    """One equivalence verdict, with provenance, as plain JSON data."""
    payload: dict[str, object] = {
        "verdict": result.verdict.value,
        "method": result.method,
        "domain": result.domain.value,
    }
    if result.details:
        payload["details"] = result.details
    if result.counterexample is not None:
        payload["counterexample"] = str(result.counterexample)
    return payload


def matrix_payload(
    cells: Mapping[tuple[str, str], EquivalenceResult],
) -> dict[str, object]:
    """A settled equivalence matrix as a sorted cell list."""
    return {
        "cells": [
            {"first": first, "second": second, **result_payload(result)}
            for (first, second), result in sorted(
                cells.items(), key=lambda item: item[0]
            )
        ]
    }


def explanation_payload(explanation: CellExplanation) -> dict[str, object]:
    """A :class:`~repro.obs.CellExplanation` as plain JSON data."""
    payload: dict[str, object] = {
        "pair": list(explanation.pair),
        "verdict": explanation.verdict,
        "method": explanation.method,
        "dispatch_class": explanation.dispatch_class,
        "normalization": explanation.normalization,
        "engine": explanation.engine,
        "cache_served": explanation.cache_served,
        "decision_path": explanation.decision_path,
        "decided_in_call": explanation.decided_in_call,
        "domain": explanation.domain,
        "bound": explanation.bound,
        "search": dict(explanation.search),
    }
    if explanation.details:
        payload["details"] = explanation.details
    if explanation.witness is not None:
        payload["witness"] = str(explanation.witness)
    return payload


def _verified_payload(verified: VerifiedRewriting) -> dict[str, object]:
    entry: dict[str, object] = {
        "name": verified.candidate.name,
        "query": str(verified.candidate.query),
        "views": list(verified.candidate.view_names),
        "result": result_payload(verified.result),
    }
    if verified.candidate.description:
        entry["description"] = verified.candidate.description
    if verified.estimated_cost is not None:
        entry["estimated_cost"] = verified.estimated_cost
    return entry


def _rejected_payload(rejected: RejectedCandidate) -> dict[str, object]:
    return {"view": rejected.view_name, "reason": rejected.reason}


def rewriting_payload(report: RewritingReport) -> dict[str, object]:
    """A :class:`~repro.rewriting.engine.RewritingReport` as plain JSON."""
    best = report.best
    return {
        "query": str(report.query),
        "safe": [_verified_payload(verified) for verified in report.safe],
        "not_equivalent": [
            _verified_payload(verified) for verified in report.not_equivalent
        ],
        "unverified": [
            _verified_payload(verified) for verified in report.unverified
        ],
        "rejected": [_rejected_payload(rejected) for rejected in report.rejected],
        "direct_cost": report.direct_cost,
        "best": best.candidate.name if best is not None else None,
    }


def stats_payload(stats: WorkspaceStats) -> dict[str, object]:
    """A :class:`~repro.session.WorkspaceStats` as plain JSON data."""
    return {
        "queries": stats.queries,
        "views": stats.views,
        "decided_cells": stats.decided_cells,
        "verdict_cache_hits": stats.verdict_cache_hits,
        "store_hits": stats.store_hits,
        "rewrite_cache_hits": stats.rewrite_cache_hits,
        "pool_forks": stats.pool_forks,
        "workers": stats.workers,
        "plan_cache": dict(stats.plan_cache),
        "counters": {scope: dict(values) for scope, values in stats.counters.items()},
    }


def encode(payload: Mapping[str, object]) -> bytes:
    """A response payload as UTF-8 JSON (sorted keys, so renderings are
    stable across runs and easy to diff in tests)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")
