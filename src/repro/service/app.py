"""The asyncio HTTP/JSON front end: equivalence decisions as a service.

One :class:`ReproService` is one multi-tenant server over named
:class:`~repro.session.Workspace` sessions, built on nothing but
``asyncio.start_server`` and a minimal HTTP/1.1 framing layer (request
line + headers + ``Content-Length`` body; keep-alive by default) — no
runtime dependencies beyond the stdlib.

Concurrency model, in one paragraph: the event loop owns all bookkeeping
(tenant LRU, admission counters, queue depth) and never blocks on a
decision procedure.  **Mutations** — ``add``, ``view``, ``equivalences``,
``rewrite`` — are admitted against the tenant's budgets, queued on the
tenant's ``asyncio.Lock`` (one writer per tenant; tenants are mutually
concurrent), and executed on a thread pool via ``run_in_executor`` so a
multi-second sweep never stalls the loop; while still holding the lock the
service publishes a frozen :class:`~repro.service.snapshots.TenantSnapshot`.
**Read-only GETs** (``equivalences``, ``explain``) resolve against that
snapshot on the loop thread itself — no lock, no thread hop — so readers
are never queued behind a writer (``serialize_reads=True`` disables the
snapshot path and locks reads too; it exists as the measured-against
baseline of ``benchmarks/bench_service.py``).

Failure containment: a pool worker dying mid-sweep surfaces as
:class:`~repro.errors.WorkerCrashError`, serialized as a structured 503
with ``retryable: true`` — the persistent executor has already discarded
the dead pool, so the client's retry re-forks a fresh one
(``parallel.pool.heals`` counts those).  Every other library error maps to
its :mod:`repro.service.protocol` code; unexpected exceptions become an
opaque 500 without killing the connection loop.

Routes::

    GET    /healthz                      liveness + tenant count
    GET    /metrics                      the process metrics registry
    GET    /tenants                      this service's tenants (LRU order)
    POST   /tenant/{id}/add              {"query": ..., "name"?: ...}
    POST   /tenant/{id}/view             {"sql": ...} | {"name","definition"}
    POST   /tenant/{id}/equivalences     decide the delta, return the matrix
    POST   /tenant/{id}/rewrite          {"query": ..., "limit"?: ...}
    GET    /tenant/{id}/equivalences     snapshot read of the settled matrix
    GET    /tenant/{id}/explain?first=&second=   snapshot cell provenance
    GET    /tenant/{id}/stats            live workspace reuse counters
    DELETE /tenant/{id}                  evict (close workspace, drop snapshot)
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, TypeVar
from urllib.parse import parse_qs

from ..errors import ReproError
from ..obs import REGISTRY as _OBS
from ..obs import span as _span
from . import snapshots
from .admission import AdmissionPolicy
from .protocol import (
    AddRequest,
    ExplainRequest,
    ProtocolError,
    RewriteRequest,
    RouteError,
    ViewRequest,
    decode_body,
    encode,
    error_payload,
    explanation_payload,
    matrix_payload,
    rewriting_payload,
    stats_payload,
)
from .snapshots import TenantSnapshot
from .tenants import Tenant, TenantRegistry, UnknownTenantError

_T = TypeVar("_T")

#: Bodies above this are rejected before reading (one query or view
#: definition is a few hundred bytes; a megabyte is a client bug).
_MAX_BODY_BYTES = 1 << 20

#: HTTP reason phrases for the statuses the service emits.
_STATUS_TEXT: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


# ----------------------------------------------------------------------
# HTTP framing
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, dict[str, str], bytes]]:
    """One ``(method, target, headers, body)`` request, or ``None`` on a
    clean EOF before the next request line."""
    request_line = await reader.readline()
    if not request_line:
        return None
    pieces = request_line.decode("latin-1").split()
    if len(pieces) != 3:
        raise ProtocolError(f"malformed request line {request_line!r}")
    method, target = pieces[0].upper(), pieces[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            return None
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError("content-length must be an integer") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _render_response(
    status: int, payload: Mapping[str, object], keep_alive: bool
) -> bytes:
    body = encode(payload)
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Response')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ReproService:
    """A multi-tenant equivalence server (see the module docstring).

    ``workers`` / ``engine`` are threaded into every tenant workspace
    (``None``: consult ``REPRO_WORKERS`` / the process engine mode once at
    workspace construction — the service itself never touches the global
    engine mode); ``policy`` defaults to
    :meth:`AdmissionPolicy.from_env`; ``serialize_reads=True`` makes GETs
    take the tenant mutation lock instead of reading snapshots (the
    benchmark baseline); ``mutation_threads`` caps concurrently executing
    mutations across all tenants.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
        policy: Optional[AdmissionPolicy] = None,
        serialize_reads: bool = False,
        mutation_threads: int = 8,
    ) -> None:
        self._host = host
        self._port = port
        self._policy = policy if policy is not None else AdmissionPolicy.from_env()
        self._registry = TenantRegistry(
            policy=self._policy, workers=workers, engine=engine
        )
        self._serialize_reads = serialize_reads
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, mutation_threads),
            thread_name_prefix="repro-service-mutation",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        #: Open client connections, so aclose() can end them gracefully
        #: instead of leaving handler tasks to be cancelled mid-await.
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    @property
    def registry(self) -> TenantRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ReproError("service already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockets = self._server.sockets
        if sockets:
            self._port = int(sockets[0].getsockname()[1])

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, tear down every tenant, release the threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        # Closed transports deliver EOF to their handlers within a few loop
        # iterations; wait (bounded) so no handler task dies cancelled.
        for _attempt in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        self._registry.close()
        self._pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ProtocolError as error:
                    status, payload = error_payload(error)
                    writer.write(_render_response(status, payload, False))
                    await writer.drain()
                    break
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ValueError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload = await self._dispatch(method, target, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(_render_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        _OBS.inc("service.requests")
        path, _sep, query_string = target.partition("?")
        params: dict[str, object] = {
            key: values[-1] for key, values in parse_qs(query_string).items()
        }
        try:
            with _span("service.request", method=method, path=path):
                return await self._route(method, path, params, body)
        except ReproError as error:
            _OBS.inc("service.errors")
            return error_payload(error)
        except Exception as error:  # noqa: BLE001 - the connection must survive
            _OBS.inc("service.errors")
            return 500, {
                "error": {
                    "code": "internal",
                    "message": str(error),
                    "type": type(error).__name__,
                }
            }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, params: Mapping[str, object], body: bytes
    ) -> tuple[int, dict[str, object]]:
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok", "tenants": len(self._registry)}
        if method == "GET" and path == "/metrics":
            return 200, {"counters": _OBS.tree()}
        if method == "GET" and path == "/tenants":
            return 200, {"tenants": list(self._registry.names())}
        parts = [segment for segment in path.split("/") if segment]
        if len(parts) == 2 and parts[0] == "tenant" and method == "DELETE":
            if not self._registry.evict(parts[1]):
                raise UnknownTenantError(f"no tenant named {parts[1]!r}")
            return 200, {"deleted": parts[1]}
        if len(parts) == 3 and parts[0] == "tenant":
            name, action = parts[1], parts[2]
            if method == "POST":
                if action == "add":
                    return await self._handle_add(name, body)
                if action == "view":
                    return await self._handle_view(name, body)
                if action == "equivalences":
                    return await self._handle_equivalences(name)
                if action == "rewrite":
                    return await self._handle_rewrite(name, body)
            elif method == "GET":
                if action == "equivalences":
                    return await self._read_equivalences(name)
                if action == "explain":
                    return await self._read_explain(name, params)
                if action == "stats":
                    return await self._read_stats(name)
        raise RouteError(f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Mutations (serialized per tenant, executed off the loop)
    # ------------------------------------------------------------------
    async def _mutate(self, tenant: Tenant, operation: Callable[[], _T]) -> _T:
        self._policy.admit_mutation(tenant.queued)
        tenant.queued += 1
        _OBS.inc("service.queue_depth")
        try:
            async with tenant.lock:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(self._pool, operation)
                self._publish(tenant)
                return result
        finally:
            tenant.queued -= 1
            _OBS.inc("service.queue_depth", -1)

    def _publish(self, tenant: Tenant) -> None:
        tenant.version += 1
        snapshots.publish(tenant.key, tenant.name, tenant.version, tenant.workspace)
        hits = tenant.workspace.stats().verdict_cache_hits
        if hits != tenant.verdict_hits_reported:
            _OBS.inc(
                f"service.tenant.{tenant.name}.verdict_cache_hits",
                hits - tenant.verdict_hits_reported,
            )
            tenant.verdict_hits_reported = hits

    async def _handle_add(
        self, name: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        request = AddRequest.from_payload(decode_body(body))
        tenant = self._registry.get_or_create(name)
        self._policy.admit_query(len(tenant.workspace))

        def mutate() -> str:
            return tenant.workspace.add(request.query, name=request.name)

        label = await self._mutate(tenant, mutate)
        return 200, {
            "tenant": name,
            "name": label,
            "queries": len(tenant.workspace),
            "version": tenant.version,
        }

    async def _handle_view(
        self, name: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        request = ViewRequest.from_payload(decode_body(body))
        tenant = self._registry.get_or_create(name)

        def mutate() -> str:
            if request.sql is not None:
                return tenant.workspace.register_view(request.sql).name
            if request.name is None or request.definition is None:
                raise ProtocolError("a view needs 'sql' or 'name'+'definition'")
            return tenant.workspace.register_view(
                request.name, request.definition
            ).name

        registered = await self._mutate(tenant, mutate)
        return 200, {"tenant": name, "view": registered, "version": tenant.version}

    async def _handle_equivalences(self, name: str) -> tuple[int, dict[str, object]]:
        tenant = self._registry.get(name)

        def mutate() -> dict[str, object]:
            return matrix_payload(tenant.workspace.equivalences())

        payload = await self._mutate(tenant, mutate)
        return 200, {"tenant": name, "version": tenant.version, **payload}

    async def _handle_rewrite(
        self, name: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        request = RewriteRequest.from_payload(decode_body(body))
        tenant = self._registry.get(name)

        def mutate() -> dict[str, object]:
            return rewriting_payload(
                tenant.workspace.rewrite(request.query, limit=request.limit)
            )

        payload = await self._mutate(tenant, mutate)
        return 200, {"tenant": name, "version": tenant.version, **payload}

    # ------------------------------------------------------------------
    # Reads (snapshot path: no lock, no thread hop)
    # ------------------------------------------------------------------
    def _snapshot_of(self, tenant: Tenant) -> TenantSnapshot:
        snapshot = snapshots.current(tenant.key)
        return snapshot if snapshot is not None else TenantSnapshot.empty(tenant.name)

    async def _read_equivalences(self, name: str) -> tuple[int, dict[str, object]]:
        tenant = self._registry.get(name)
        if self._serialize_reads:
            async with tenant.lock:
                payload = matrix_payload(tenant.workspace.settled_cells())
                version = tenant.version
        else:
            snapshot = self._snapshot_of(tenant)
            payload = matrix_payload(snapshot.cells)
            version = snapshot.version
        return 200, {"tenant": name, "version": version, **payload}

    async def _read_explain(
        self, name: str, params: Mapping[str, object]
    ) -> tuple[int, dict[str, object]]:
        request = ExplainRequest.from_payload(params)
        tenant = self._registry.get(name)
        if self._serialize_reads:
            async with tenant.lock:
                explanation = tenant.workspace.explain(request.first, request.second)
                version = tenant.version
        else:
            snapshot = self._snapshot_of(tenant)
            explanation = snapshot.explain(request.first, request.second)
            version = snapshot.version
        return 200, {
            "tenant": name,
            "version": version,
            **explanation_payload(explanation),
        }

    async def _read_stats(self, name: str) -> tuple[int, dict[str, object]]:
        tenant = self._registry.get(name)
        return 200, {
            "tenant": name,
            "version": tenant.version,
            **stats_payload(tenant.workspace.stats()),
        }


# ----------------------------------------------------------------------
# Background-thread hosting (tests, benchmarks, the demo)
# ----------------------------------------------------------------------
class _StartupBox:
    """What the server thread hands back to the starting thread."""

    loop: Optional[asyncio.AbstractEventLoop] = None
    stop: Optional[asyncio.Event] = None
    error: Optional[BaseException] = None


@dataclass
class ServiceHandle:
    """A service running its own event loop on a daemon thread."""

    service: ReproService
    thread: threading.Thread
    _loop: asyncio.AbstractEventLoop
    _stop: asyncio.Event

    @property
    def address(self) -> tuple[str, int]:
        return self.service.host, self.service.port

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the loop to shut the service down and join the thread."""
        self._loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout)


def start_in_thread(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    policy: Optional[AdmissionPolicy] = None,
    serialize_reads: bool = False,
    mutation_threads: int = 8,
) -> ServiceHandle:
    """Start a :class:`ReproService` on a fresh event loop in a daemon
    thread and block until it is accepting (default ``port=0``: pick a free
    port, read it back from :attr:`ServiceHandle.address`)."""
    service = ReproService(
        host=host,
        port=port,
        workers=workers,
        engine=engine,
        policy=policy,
        serialize_reads=serialize_reads,
        mutation_threads=mutation_threads,
    )
    started = threading.Event()
    box = _StartupBox()

    async def _run() -> None:
        box.loop = asyncio.get_running_loop()
        box.stop = asyncio.Event()
        try:
            await service.start()
        except BaseException as error:  # noqa: BLE001 - reported to the starter
            box.error = error
            started.set()
            return
        started.set()
        try:
            await box.stop.wait()
        finally:
            await service.aclose()

    thread = threading.Thread(
        target=lambda: asyncio.run(_run()), name="repro-service", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):
        raise ReproError("service did not start within 30s")
    if box.error is not None:
        thread.join(timeout=5.0)
        raise ReproError(f"service failed to start: {box.error}") from box.error
    if box.loop is None or box.stop is None:  # pragma: no cover - defensive
        raise ReproError("service thread reported no event loop")
    return ServiceHandle(service, thread, box.loop, box.stop)
