"""``python -m repro.service`` — serve equivalence decisions over HTTP.

The CLI is a thin wrapper over :class:`repro.service.app.ReproService`:
parse the listen address and worker count, start the server, run until
interrupted.  Budgets come from the ``REPRO_SERVICE_*`` environment
variables (:meth:`repro.service.admission.AdmissionPolicy.from_env`).
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

from ..engine.modes import ENGINE_MODES
from .app import ReproService


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Multi-tenant equivalence-decision server over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=8765, help="listen port (0: pick a free one)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool workers per tenant workspace (default: REPRO_WORKERS)",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_MODES),
        default=None,
        help="pin every tenant's evaluation engine (default: process mode)",
    )
    parser.add_argument(
        "--serialize-reads",
        action="store_true",
        help="take the tenant mutation lock on GETs too (benchmark baseline)",
    )
    args = parser.parse_args(argv)
    service = ReproService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        engine=args.engine,
        serialize_reads=bool(args.serialize_reads),
    )

    async def _run() -> None:
        await service.start()
        print(f"repro.service listening on http://{service.host}:{service.port}")
        try:
            await service.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await service.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
