"""Frozen copy-on-write snapshots of each tenant's settled state.

Mutations (``add``, ``view``, ``equivalences``, ``rewrite``) run in a
worker thread serialized by the tenant's asyncio lock; read-only GETs must
not queue behind a multi-second sweep just to read verdicts that were
settled long before it started.  The snapshot store is what lets them skip
the lock entirely:

* After every successful mutation — while still holding the tenant lock —
  the service publishes a :class:`TenantSnapshot`: shallow copies of the
  workspace's query catalog, settled cell map, and provenance map.  The
  values (:class:`~repro.datalog.queries.Query`,
  :class:`~repro.core.equivalence.EquivalenceResult`) are immutable, so a
  shallow dict copy is a complete freeze — copy-on-write in the only sense
  that matters: the *maps* are copied, the heavyweight values are shared.
* Read-only GETs (``equivalences``, ``explain``) resolve against the
  latest published snapshot on the event loop thread, with no lock and no
  thread hop.  A concurrent writer mutates the live workspace and then
  publishes a *new* snapshot object; readers that already hold the old one
  keep a consistent (if slightly stale) view.  ``version`` — the tenant's
  mutation ordinal — makes the staleness observable to clients.

The store itself is a module-level cache keyed by the registry-qualified
tenant key, registered with :mod:`repro.caches` under
``clear_service_caches`` so the PR 8 cache-discipline checker sees its
reset wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..caches import register_cache
from ..core.equivalence import EquivalenceResult
from ..datalog.queries import Query
from ..obs import CellExplanation
from ..session import Workspace, explain_cell


@dataclass(frozen=True)
class TenantSnapshot:
    """One tenant's settled state, frozen at a mutation boundary."""

    #: The tenant's public name (the URL path segment).
    tenant: str
    #: The mutation ordinal that published this snapshot (1-based; each
    #: successful mutation bumps it, so readers can order what they saw).
    version: int
    queries: Mapping[str, Query]
    cells: Mapping[tuple[str, str], EquivalenceResult]
    provenance: Mapping[tuple[str, str], Mapping[str, object]]

    def explain(self, first: str, second: str) -> CellExplanation:
        """Provenance of one settled cell, exactly as the live workspace
        would explain it (same :func:`~repro.session.explain_cell`)."""
        return explain_cell(self.queries, self.cells, self.provenance, first, second)

    @classmethod
    def empty(cls, tenant: str) -> "TenantSnapshot":
        """The snapshot of a tenant no mutation has touched yet."""
        return cls(tenant=tenant, version=0, queries={}, cells={}, provenance={})


#: Latest published snapshot per registry-qualified tenant key.  Written
#: only under the owning tenant's lock; read lock-free from the event loop
#: (a dict get of an immutable value).
_SNAPSHOT_STORE: dict[str, TenantSnapshot] = {}

register_cache(
    "service/snapshots.py:_SNAPSHOT_STORE",
    "clear_service_caches",
    _SNAPSHOT_STORE.clear,
)


def publish(key: str, tenant: str, version: int, workspace: Workspace) -> TenantSnapshot:
    """Freeze ``workspace``'s settled state as ``tenant``'s snapshot
    ``version`` and make it the one readers resolve.

    Must run while the caller holds the tenant's mutation lock — the copy
    reads the workspace's live maps."""
    snapshot = TenantSnapshot(
        tenant=tenant,
        version=version,
        queries=workspace.queries,
        cells=workspace.settled_cells(),
        provenance=workspace.cell_provenance(),
    )
    _SNAPSHOT_STORE[key] = snapshot
    return snapshot


def current(key: str) -> Optional[TenantSnapshot]:
    """The latest snapshot published under ``key`` (``None`` before the
    first mutation)."""
    return _SNAPSHOT_STORE.get(key)


def drop(key: str) -> None:
    """Forget ``key``'s snapshot (tenant eviction/deletion)."""
    _SNAPSHOT_STORE.pop(key, None)
