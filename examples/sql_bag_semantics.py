#!/usr/bin/env python3
"""SQL aggregate queries and bag-set semantics (Section 8 of the paper).

SQL evaluates queries under bag semantics: joining in an extra table can change
the multiplicities of the rows feeding an aggregate even when the *set* of
answer rows is unchanged.  The paper's corollary makes this checkable: two
non-aggregate queries are bag-set equivalent iff their ``count``-extended
versions are equivalent.  This example parses a small SQL workload, translates
it into the paper's query class, and shows

* a rewriting that is safe under set semantics but visibly unsafe under an
  aggregate (demonstrated with a concrete counterexample database),
* the exact decision procedure at work on a pair small enough for the
  doubly-exponential bounded-equivalence enumeration, and
* a genuinely safe rewriting (reordered filters) being certified.

Run with::

    python examples/sql_bag_semantics.py
"""

from repro import Verdict, are_equivalent, evaluate, parse_database, parse_query
from repro.core import bag_set_equivalent, find_counterexample, set_equivalent
from repro.engine import evaluate_bag_set
from repro.sql import SqlTranslator

SCHEMA = {
    "orders": ["customer", "product", "amount"],
    "customers": ["customer", "region"],
    "blacklist": ["customer"],
}


def main() -> None:
    translator = SqlTranslator(SCHEMA)

    # ------------------------------------------------------------------
    # 1. A join that silently multiplies multiplicities under SUM.
    # ------------------------------------------------------------------
    sum_plain = translator.translate(
        "SELECT customer, SUM(amount) FROM orders GROUP BY customer", name="sum_plain"
    )
    sum_joined = translator.translate(
        "SELECT orders.customer, SUM(orders.amount) FROM orders, customers "
        "WHERE orders.customer = customers.customer GROUP BY orders.customer",
        name="sum_joined",
    )
    print("sum_plain :", sum_plain)
    print("sum_joined:", sum_joined)
    database = parse_database(
        "orders(1, 10, 100). orders(1, 11, 50). orders(2, 10, 70). "
        "customers(1, 5). customers(1, 6). customers(2, 5)."
    )
    print("over a database where customer 1 appears in two regions:")
    print("  sum_plain :", evaluate(sum_plain, database))
    print("  sum_joined:", evaluate(sum_joined, database))
    witness = find_counterexample(sum_plain, sum_joined)
    print("automatic counterexample search found a distinguishing database:", witness is not None)
    print()

    # ------------------------------------------------------------------
    # 2. The exact procedures, on a pair small enough to enumerate: set
    #    semantics says the projection rewriting is fine, bag-set semantics
    #    (equivalently, the count-queries) says it is not.
    # ------------------------------------------------------------------
    plain = parse_query("q(c) :- orders_small(c, a)")
    padded = parse_query("q(c) :- orders_small(c, a), orders_small(c, b)")
    print("plain :", plain)
    print("padded:", padded)
    print(f"  set semantics      -> equivalent = {set_equivalent(plain, padded).equivalent}")
    print(f"  bag-set semantics  -> equivalent = {bag_set_equivalent(plain, padded).equivalent}")
    small_db = parse_database("orders_small(1, 10). orders_small(1, 20).")
    print("  multiplicities over a two-order customer:")
    print("    plain :", dict(evaluate_bag_set(plain, small_db)))
    print("    padded:", dict(evaluate_bag_set(padded, small_db)))
    print()

    # ------------------------------------------------------------------
    # 3. A safe rewriting: NOT EXISTS and comparison filters commute.
    # ------------------------------------------------------------------
    filtered_a = translator.translate(
        "SELECT customer, COUNT(*) FROM orders WHERE amount > 0 AND NOT EXISTS "
        "(SELECT * FROM blacklist WHERE blacklist.customer = orders.customer) GROUP BY customer",
        name="filtered_a",
    )
    filtered_b = translator.translate(
        "SELECT customer, COUNT(*) FROM orders WHERE NOT EXISTS "
        "(SELECT * FROM blacklist WHERE blacklist.customer = orders.customer) AND 0 < amount "
        "GROUP BY customer",
        name="filtered_b",
    )
    result = are_equivalent(filtered_a, filtered_b)
    print(f"reordered NOT EXISTS / comparison filters equivalent?  {result.verdict.value}")
    assert result.verdict is Verdict.EQUIVALENT


if __name__ == "__main__":
    main()
