#!/usr/bin/env python3
"""Data-warehouse query rewriting: the motivating scenario of the paper,
end to end.

A warehouse keeps pre-aggregated materialized views next to its fact table.
An optimizer may substitute a view-based rewriting for an analyst's report
only when the rewriting is *equivalent over every database* — which is
exactly what the paper's decision procedures decide.  This example runs the
whole pipeline with :func:`repro.rewrite`: candidates are synthesized over
the view catalog, unfolded back to base predicates, verified by the
equivalence engine, and ranked by estimated cost over the view extents.

Run with::

    python examples/warehouse_rewriting.py
"""

from repro import rewrite
from repro.engine.evaluator import evaluate
from repro.workloads import build_view_scenario


def show_report(title: str, rows: dict) -> None:
    print(f"  {title}")
    for key in sorted(rows):
        print(f"    store {key[0]:>2}: {rows[key]}")


def main() -> None:
    scenario = build_view_scenario(stores=4, products=6, sales_per_store=10, seed=3)
    print(
        f"warehouse with {scenario.fact_count} facts, "
        f"{len(scenario.views)} materialized views:"
    )
    for view in scenario.views:
        print(f"  {view}")
    print()

    materialized = scenario.materialized()

    for name in ("total_revenue", "sales_count", "assortment", "kept_revenue"):
        query = scenario.queries[name]
        print(f"--- {name}: {query}")
        report = rewrite(query, scenario.views, database=scenario.database, seed=7)
        for verified in report.safe:
            print(
                f"  SAFE    {verified.candidate.query}"
                f"   [{verified.result.method}; est. cost {verified.estimated_cost}"
                f" vs direct {report.direct_cost}]"
            )
        for verified in report.not_equivalent + report.unverified:
            print(f"  UNSAFE  {verified.candidate.query}  [{verified.result.verdict.value}]")
        for rejection in report.rejected:
            print(f"  REJECTED {rejection}")
        best = report.best
        if best is None:
            print("  (no safe rewriting; evaluate the fact table directly)")
            continue
        # The substitution is proven safe for every database; demonstrate it
        # on this instance: identical reports, far fewer rows touched.
        direct = evaluate(query, scenario.database)
        via_views = evaluate(best.candidate.query, materialized)
        assert direct == via_views
        print(f"  -> best: {best.candidate.name} (identical report, shown below)")
        show_report("report via materialized views", via_views)
        print()


if __name__ == "__main__":
    main()
