#!/usr/bin/env python3
"""Data-warehouse query rewriting: the motivating scenario of the paper.

An analyst's revenue report is posed in several syntactic variants; a rewriting
optimizer may only substitute one for another when they are *equivalent over
every database*.  This example builds a small sales warehouse, shows that the
variants produce identical reports, and uses the decision procedures to tell
the safe rewritings apart from the unsafe ones.

Run with::

    python examples/warehouse_rewriting.py
"""

from repro import Verdict, are_equivalent, evaluate, parse_query
from repro.workloads import build_warehouse


def report(title: str, rows: dict) -> None:
    print(f"  {title}")
    for key in sorted(rows):
        print(f"    store {key[0]:>2}: {rows[key]}")


def main() -> None:
    warehouse = build_warehouse(stores=4, products=6, sales_per_store=10, seed=3)
    print(f"warehouse with {warehouse.fact_count} facts over {warehouse.database.carrier_size} constants")
    print()

    revenue = warehouse.queries["revenue_per_store"]
    revenue_alt = warehouse.queries["revenue_per_store_alt"]
    revenue_wrong = warehouse.queries["revenue_keep_returns"]

    print("candidate rewritings of the revenue report:")
    print("  A:", revenue)
    print("  B:", revenue_alt)
    print("  C:", revenue_wrong)
    print()

    # The decision procedure separates the safe rewriting (B) from the unsafe one (C).
    for label, candidate in (("B", revenue_alt), ("C", revenue_wrong)):
        result = are_equivalent(revenue, candidate)
        safe = "SAFE to substitute" if result.verdict is Verdict.EQUIVALENT else "NOT safe"
        print(f"A ≡ {label}?  {result.verdict.value:<15} -> {safe}   [{result.method}]")
    print()

    # Sanity check on the concrete instance: A and B agree, C differs.
    report("report A", evaluate(revenue, warehouse.database))
    report("report C (ignores returns)", evaluate(revenue_wrong, warehouse.database))
    print()

    # Other analyst queries from the scenario.
    largest = warehouse.queries["largest_sale"]
    rewritten_largest = parse_query("largest(s, max(a)) :- sales(s, p, a), 10 < a")
    result = are_equivalent(largest, rewritten_largest)
    print(f"largest-sale rewriting equivalent? {result.verdict.value} [{result.method}]")

    count_premium = warehouse.queries["large_sales_count"]
    dropped_filter = parse_query("large_sales(s, count()) :- sales(s, p, a), a > 10")
    result = are_equivalent(count_premium, dropped_filter)
    print(f"dropping the premium_store filter equivalent? {result.verdict.value}")


if __name__ == "__main__":
    main()
