#!/usr/bin/env python3
"""Quickstart: parse aggregate queries, evaluate them, and decide equivalence.

Run with::

    python examples/quickstart.py
"""

from repro import Domain, are_equivalent, evaluate, parse_database, parse_query


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Write queries in the paper's Datalog-style syntax.
    # ------------------------------------------------------------------
    q1 = parse_query("q(dept, sum(salary)) :- emp(dept, salary), not frozen(dept), salary > 0")
    q2 = parse_query("q(dept, sum(s)) :- emp(dept, s), 0 < s, not frozen(dept)")
    q3 = parse_query("q(dept, sum(salary)) :- emp(dept, salary), salary > 0")

    print("q1:", q1)
    print("q2:", q2)
    print("q3:", q3)
    print()

    # ------------------------------------------------------------------
    # 2. Evaluate over a concrete database.
    # ------------------------------------------------------------------
    database = parse_database(
        "emp(1, 1000). emp(1, 1500). emp(2, 900). emp(2, -50). frozen(2)."
    )
    print("database:", database)
    print("q1 over D:", evaluate(q1, database))
    print("q3 over D:", evaluate(q3, database))
    print()

    # ------------------------------------------------------------------
    # 3. Decide equivalence.  q1 and q2 only differ by variable names and the
    #    direction in which a comparison is written; q3 drops a negated
    #    subgoal and is therefore not equivalent.
    # ------------------------------------------------------------------
    result_equivalent = are_equivalent(q1, q2)
    print(f"q1 ≡ q2?  {result_equivalent.verdict.value}  (method: {result_equivalent.method})")

    result_different = are_equivalent(q1, q3)
    print(f"q1 ≡ q3?  {result_different.verdict.value}  (method: {result_different.method})")
    if result_different.counterexample is not None and result_different.counterexample.database:
        print("  witness database:", result_different.counterexample.database)

    # ------------------------------------------------------------------
    # 4. Comparisons are domain sensitive: over the integers 0 < x < 2 pins
    #    x to 1, over the rationals it does not.
    # ------------------------------------------------------------------
    narrow = parse_query("q(x, count()) :- p(x), x > 0, x < 2")
    pinned = parse_query("q(x, count()) :- p(x), x = 1")
    over_z = are_equivalent(narrow, pinned, domain=Domain.INTEGERS)
    over_q = are_equivalent(narrow, pinned, domain=Domain.RATIONALS)
    print()
    print(f"0 < x < 2 vs x = 1: over Z -> {over_z.verdict.value}, over Q -> {over_q.verdict.value}")


if __name__ == "__main__":
    main()
