#!/usr/bin/env python3
"""A tour of the decision procedures: quasilinear fast path, bounded
equivalence, decompositions, and the limits of decidability.

Run with::

    python examples/decision_procedures_tour.py
"""

import time

from repro import Domain, Verdict, are_equivalent, parse_database, parse_query
from repro.aggregates import build_table1, format_table1
from repro.core import (
    bounded_equivalence,
    build_table2,
    decomposition,
    format_table2,
    local_equivalence,
    quasilinear_equivalent,
    verify_decomposition,
)
from repro.workloads import linear_chain_query, renamed_copy


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. The property tables of the paper, regenerated from the code")
    print(format_table1(build_table1()))
    print()
    print(format_table2(build_table2()))

    section("2. Quasilinear queries: equivalence is isomorphism (polynomial time)")
    chain = linear_chain_query(6, function="sum")
    copy = renamed_copy(chain)
    start = time.perf_counter()
    verdict = quasilinear_equivalent(chain, copy)
    elapsed = time.perf_counter() - start
    print("query :", chain)
    print("copy  :", copy)
    print(f"equivalent? {verdict.equivalent} ({verdict.reason}) in {elapsed*1000:.2f} ms")

    section("3. Bounded equivalence: the Theorem 4.8 enumeration")
    first = parse_query("q(count()) :- p(y), p(z), y < z")
    second = parse_query("q(count()) :- p(y), p(z), y != z")
    for bound in (1, 2):
        report = bounded_equivalence(first, second, bound)
        print(
            f"N = {bound}: {'equivalent' if report.equivalent else 'NOT equivalent'} "
            f"(subsets: {report.subsets_examined}, orderings: {report.orderings_examined})"
        )
    print("-> the queries agree on single-constant databases but differ once two constants exist")

    section("4. Full equivalence via local equivalence (Theorem 6.5)")
    idempotent_first = parse_query("q(max(y)) :- p(y) ; p(y), r(y)")
    idempotent_second = parse_query("q(max(y)) :- p(y)")
    report = local_equivalence(idempotent_first, idempotent_second)
    print(f"max over duplicated disjunct: equivalent = {report.equivalent} (bound τ = {report.bound})")
    group_first = parse_query("q(sum(y)) :- p(y) ; p(y), r(y)")
    group_second = parse_query("q(sum(y)) :- p(y)")
    report = local_equivalence(group_first, group_second)
    print(f"sum over duplicated disjunct: equivalent = {report.equivalent}")
    if report.counterexample and report.counterexample.database:
        print("  witness:", report.counterexample.database)

    section("5. Database decompositions (Section 6) on a concrete database")
    query_a = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
    query_b = parse_query("q(x, sum(y)) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0")
    database = parse_database("p(1, 2). p(1, 3). p(1, -1). p(2, 5). r(3).")
    parts = decomposition(query_a, query_b, database, (1,))
    check = verify_decomposition(query_a, query_b, database, (1,), parts)
    print(f"decomposition of {database} for group (1,): {len(parts)} parts")
    for part in parts:
        print("  ", part)
    print(f"properties 1-3 hold? {check.is_decomposition}")

    section("6. The undecided fragment (avg / cntd beyond quasilinear)")
    avg_first = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), r(x)")
    avg_second = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), s(x)")
    result = are_equivalent(avg_first, avg_second, counterexample_trials=150)
    print(f"disjunctive avg queries: verdict = {result.verdict.value}")
    print(f"  {result.details}")

    section("7. Domain sensitivity (Z vs Q)")
    narrow = parse_query("q(sum(y)) :- p(y), y > 0, y < 2")
    pinned = parse_query("q(sum(y)) :- p(y), y = 1")
    for domain in (Domain.INTEGERS, Domain.RATIONALS):
        result = are_equivalent(narrow, pinned, domain=domain)
        print(f"  over {domain.value:10s}: {result.verdict.value}")


if __name__ == "__main__":
    main()
