#!/usr/bin/env python3
"""The equivalence service end to end: two tenants served concurrently.

Boots the multi-tenant HTTP service (:mod:`repro.service`) on an ephemeral
loopback port, then drives two tenants from concurrent client threads — an
``analytics`` tenant deciding an equivalence matrix over aggregate-query
variants, and a ``warehouse`` tenant registering a view and asking for
rewritings.  Each tenant gets its own :class:`~repro.session.Workspace` and
its own lock, so neither sees the other's catalog and neither waits on the
other's sweeps.

Run with::

    python examples/service_demo.py
"""

import http.client
import json
import threading

from repro.service import start_in_thread


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def request(address, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection(*address, timeout=120)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


def drive_analytics(address, out: dict) -> None:
    """Tenant 1: build a small catalog and decide its equivalence matrix."""
    catalog = {
        "by_store": "sales(s, sum(r)) :- revenue(s, r), active(s)",
        "renamed": "sales(x, sum(y)) :- revenue(x, y), active(x)",
        "reordered": "sales(s, sum(r)) :- active(s), revenue(s, r)",
        "maximum": "sales(s, max(r)) :- revenue(s, r), active(s)",
    }
    for name, query in catalog.items():
        status, _body = request(
            address, "POST", "/tenant/analytics/add", {"query": query, "name": name}
        )
        assert status == 200, f"add {name}: {status}"
    status, matrix = request(address, "POST", "/tenant/analytics/equivalences")
    assert status == 200, f"equivalences: {status}"
    out["matrix"] = matrix


def drive_warehouse(address, out: dict) -> None:
    """Tenant 2: register a view and ask for rewritings of a query."""
    status, _body = request(
        address,
        "POST",
        "/tenant/warehouse/view",
        {"name": "store_sales", "definition": "store_sales(s, r) :- revenue(s, r)"},
    )
    assert status == 200, f"view: {status}"
    status, report = request(
        address,
        "POST",
        "/tenant/warehouse/rewrite",
        {"query": "total(s, sum(r)) :- revenue(s, r)"},
    )
    assert status == 200, f"rewrite: {status}"
    out["report"] = report


def main() -> None:
    handle = start_in_thread(workers=1)
    try:
        address = handle.address
        print(f"service listening on http://{address[0]}:{address[1]}")
        status, health = request(address, "GET", "/healthz")
        print(f"GET /healthz -> {status} {health}")

        section("Two tenants, driven concurrently")
        results: dict = {}
        threads = [
            threading.Thread(target=drive_analytics, args=(address, results)),
            threading.Thread(target=drive_warehouse, args=(address, results)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print("analytics equivalence matrix "
              f"(version {results['matrix']['version']}):")
        for cell in results["matrix"]["cells"]:
            print(f"  {cell['first']:<10} vs {cell['second']:<10} "
                  f"{cell['verdict']:<15} via {cell['method']}")

        report = results["report"]
        safe = [entry["name"] for entry in report["safe"]]
        print(f"warehouse rewritings of {report['query']!r}:")
        print(f"  safe: {safe}  best: {report['best']}")

        section("Isolation: each tenant sees only its own catalog")
        status, stats = request(address, "GET", "/tenant/analytics/stats")
        print(f"analytics: {stats['queries']} queries, "
              f"{stats['decided_cells']} decided cells")
        status, stats = request(address, "GET", "/tenant/warehouse/stats")
        print(f"warehouse: {stats['queries']} queries, {stats['views']} view(s)")
        status, explanation = request(
            address, "GET", "/tenant/analytics/explain?first=by_store&second=renamed"
        )
        print("explain(by_store, renamed): "
              f"{explanation['verdict']} via {explanation['method']} "
              f"[{explanation['decision_path']}]")

        section("Service metrics")
        status, metrics = request(address, "GET", "/metrics")
        for name, value in sorted(metrics["counters"]["service"].items()):
            print(f"  service.{name} = {value}")
    finally:
        handle.stop()
    print()
    print("done: both tenants served by one process, one workspace each")


if __name__ == "__main__":
    main()
