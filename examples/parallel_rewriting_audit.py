#!/usr/bin/env python3
"""Parallel decision procedures: auditing rewritings of a warehouse catalog.

A rewriting optimizer faced with a catalog of analyst queries needs two
expensive judgements: pairwise equivalence across the catalog, and full
bounded-equivalence audits for rewritings that fall outside the fast
quasilinear fragment.  Both decompose into independent checks, so both shard
across worker processes (:mod:`repro.parallel`) — and both stay
deterministic: verdicts and witnesses do not depend on worker scheduling.

Run with::

    python examples/parallel_rewriting_audit.py
"""

from repro import parse_query
from repro.core import bounded_equivalence
from repro.workloads import build_warehouse, equivalence_matrix, format_equivalence_matrix


def main() -> None:
    warehouse = build_warehouse(stores=3, products=4, sales_per_store=6, seed=11)

    # ------------------------------------------------------------------
    # 1. The catalog matrix, sharded across worker processes.
    # ------------------------------------------------------------------
    catalog = {
        name: warehouse.queries[name]
        for name in ("revenue_per_store", "revenue_per_store_alt", "largest_sale")
    }
    # The ROADMAP's pinned-sum pair: sum over a variable pinned to 1 IS count.
    catalog["unit_sales"] = parse_query("units(s, sum(u)) :- sales(s, p, a), u = 1")
    catalog["sales_count"] = parse_query("units(s, count()) :- sales(s, p, a)")

    results = equivalence_matrix(catalog, workers=2, seed=7)
    print("catalog equivalence matrix (workers=2, seeded):")
    print(format_equivalence_matrix(results))
    pinned = results[("sales_count", "unit_sales")]
    print()
    print(f"pinned-sum cell: {pinned.verdict.value} [{pinned.method}]")
    print()

    # ------------------------------------------------------------------
    # 2. A full bounded audit of a literal-reordered rewriting.
    # ------------------------------------------------------------------
    first = parse_query("audit(count()) :- returns(s, p), premium_store(s)")
    second = parse_query("audit(count()) :- premium_store(s), returns(s, p)")
    report = bounded_equivalence(first, second, 2, workers=2, parallel_threshold=0)
    print("bounded rewriting audit (N=2, workers=2):")
    print(f"  equivalent: {report.equivalent}")
    print(
        f"  canonical subsets examined: {report.subsets_examined} "
        f"(+{report.subsets_skipped_by_symmetry} orbit duplicates never generated)"
    )
    print(f"  ordering checks: {report.orderings_examined}")
    for note in report.notes:
        print(f"  note: {note}")


if __name__ == "__main__":
    main()
