#!/usr/bin/env python3
"""A live optimizer session: auditing a warehouse catalog incrementally.

A rewriting optimizer holding a catalog of analyst queries does not see the
catalog once — queries keep arriving, and each arrival asks one question:
which existing formulations is the newcomer equivalent to?  The session API
(:class:`repro.Workspace`) is built for exactly that shape of traffic: the
shared BASE, the Γ / signature caches, and the worker pool persist across
calls, and each ``equivalences()`` re-query decides only the *delta* cells
(new query × catalog).  Verdicts stay deterministic — they never depend on
worker scheduling or on how the catalog was grown.

Run with::

    python examples/parallel_rewriting_audit.py
"""

from repro import Workspace
from repro.workloads import build_warehouse, format_equivalence_matrix


def main() -> None:
    warehouse = build_warehouse(stores=3, products=4, sales_per_store=6, seed=11)

    with Workspace(workers=2, seed=7) as session:
        # --------------------------------------------------------------
        # 1. Seed the session with the standing catalog.
        # --------------------------------------------------------------
        for name in ("revenue_per_store", "revenue_per_store_alt", "largest_sale"):
            session.add(warehouse.queries[name], name=name)
        results = session.equivalences()
        print("standing catalog (workers=2, seeded):")
        print(format_equivalence_matrix(results))
        print()

        # --------------------------------------------------------------
        # 2. Two queries arrive mid-session — the ROADMAP's pinned-sum
        #    pair: sum over a variable pinned to 1 IS count.  Only the
        #    new cells are decided; the three old ones are served from
        #    the session.
        # --------------------------------------------------------------
        session.add("units(s, sum(u)) :- sales(s, p, a), u = 1", name="unit_sales")
        session.add("units(s, count()) :- sales(s, p, a)", name="sales_count")
        results = session.equivalences()
        print("after two arrivals (only the delta cells were decided):")
        print(format_equivalence_matrix(results))
        pinned = results[("sales_count", "unit_sales")]
        print()
        print(f"pinned-sum cell: {pinned.verdict.value} [{pinned.method}]")
        print()

        # --------------------------------------------------------------
        # 3. Session accounting: decided vs served, and the pool that
        #    was forked (at most) once for the whole session.
        # --------------------------------------------------------------
        stats = session.stats()
        total_cells = len(results)
        print(
            f"session stats: {stats.decided_cells} of {total_cells} cells decided "
            f"across 2 calls, {stats.pool_forks} pool fork(s), "
            f"{stats.workers} workers"
        )


if __name__ == "__main__":
    main()
