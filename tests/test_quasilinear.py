"""Tests for the quasilinear equivalence procedure (Section 7)."""

import pytest

from repro import Domain, parse_query
from repro.aggregates import get_function
from repro.core import (
    is_quasilinear_decidable,
    linear_equivalent,
    local_equivalence,
    quasilinear_equivalent,
)
from repro.core.quasilinear import positive_projections_isomorphic
from repro.errors import UndecidableError


class TestFragmentDetection:
    def test_singleton_determining_functions_are_covered(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        function = get_function("sum")
        assert is_quasilinear_decidable(first, second, function, Domain.RATIONALS)

    def test_non_quasilinear_query_not_covered(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), p(x, z)")
        function = get_function("sum")
        assert not is_quasilinear_decidable(first, first, function, Domain.RATIONALS)

    def test_cntd_special_cases(self):
        function = get_function("cntd")
        no_constants = parse_query("q(x, cntd(y)) :- p(x, y), y >= x")
        assert is_quasilinear_decidable(no_constants, no_constants, function, Domain.INTEGERS)
        assert is_quasilinear_decidable(no_constants, no_constants, function, Domain.RATIONALS)
        with_constants = parse_query("q(x, cntd(y)) :- p(x, y), y >= 3")
        assert is_quasilinear_decidable(with_constants, with_constants, function, Domain.RATIONALS)
        assert not is_quasilinear_decidable(with_constants, with_constants, function, Domain.INTEGERS)
        strict_comparison = parse_query("q(x, cntd(y)) :- p(x, y), y > x")
        assert not is_quasilinear_decidable(strict_comparison, strict_comparison, function, Domain.RATIONALS)

    def test_outside_fragment_raises(self):
        first = parse_query("q(x, avg(y)) :- p(x, y), p(x, z)")
        with pytest.raises(UndecidableError):
            quasilinear_equivalent(first, first)


class TestEquivalenceDecisions:
    def test_identical_queries(self):
        query = parse_query("q(x, max(y)) :- p(x, y), not r(x), y > 0")
        assert quasilinear_equivalent(query, query).equivalent

    def test_variable_renaming(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), s(x, z), z > 1")
        second = parse_query("q(x, sum(y)) :- p(x, y), s(x, w), w > 1")
        assert quasilinear_equivalent(first, second).equivalent

    def test_equivalent_comparison_rewriting(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, sum(y)) :- p(x, y), 0 < y")
        assert quasilinear_equivalent(first, second).equivalent

    def test_reduction_before_isomorphism(self):
        # The equality z = x must be eliminated before the isomorphism check.
        first = parse_query("q(x, sum(y)) :- p(x, y), s(z, w), z = x, w > 0")
        second = parse_query("q(x, sum(y)) :- p(x, y), s(x, v), v > 0")
        assert quasilinear_equivalent(first, second).equivalent

    def test_integer_pinning_recognized(self):
        first = parse_query("q(x, count()) :- p(x), x > 3, x < 5")
        second = parse_query("q(x, count()) :- p(x), x >= 4, x <= 4")
        assert quasilinear_equivalent(first, second, Domain.INTEGERS).equivalent
        assert not quasilinear_equivalent(first, second, Domain.RATIONALS).equivalent

    def test_different_negation_not_equivalent(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(x)")
        second = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        assert not quasilinear_equivalent(first, second).equivalent

    def test_missing_negation_not_equivalent(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, sum(y)) :- p(x, y)")
        assert not quasilinear_equivalent(first, second).equivalent

    def test_different_comparisons_not_equivalent(self):
        first = parse_query("q(x, max(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, max(y)) :- p(x, y), y >= 0")
        assert not quasilinear_equivalent(first, second).equivalent

    def test_unsatisfiable_queries_are_equivalent(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), y > 3, y < 2")
        second = parse_query("q(x, sum(y)) :- p(x, y), x > 5, x < 4")
        verdict = quasilinear_equivalent(first, second)
        assert verdict.equivalent and "unsatisfiable" in verdict.reason

    def test_one_unsatisfiable_query_not_equivalent(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), y > 3, y < 2")
        second = parse_query("q(x, sum(y)) :- p(x, y)")
        assert not quasilinear_equivalent(first, second).equivalent

    def test_different_functions_not_equivalent(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, max(y)) :- p(x, y)")
        assert not quasilinear_equivalent(first, second).equivalent

    def test_verdict_carries_isomorphism_and_reduced_queries(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), s(x, z)")
        second = parse_query("q(x, sum(y)) :- p(x, y), s(x, w)")
        verdict = quasilinear_equivalent(first, second)
        assert verdict.isomorphism is not None
        assert verdict.reduced_first is not None and verdict.reduced_second is not None

    def test_linear_equivalent_requires_linear_queries(self):
        negated = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        with pytest.raises(UndecidableError):
            linear_equivalent(negated, negated)
        linear = parse_query("q(x, sum(y)) :- p(x, y)")
        assert linear_equivalent(linear, linear)


class TestAgainstGeneralProcedure:
    """The quasilinear fast path must agree with the general local-equivalence
    procedure on small instances (Theorem 7.2 vs Theorem 6.5)."""

    PAIRS = [
        ("q(max(y)) :- p(y), not r(y)", "q(max(y)) :- p(y), not r(y)"),
        ("q(max(y)) :- p(y), not r(y)", "q(max(y)) :- p(y)"),
        ("q(sum(y)) :- p(y), y > 0", "q(sum(y)) :- p(y), 0 < y"),
        ("q(sum(y)) :- p(y), y > 0", "q(sum(y)) :- p(y), y >= 0"),
        ("q(count()) :- p(y), not r(y)", "q(count()) :- p(y), not s(y)"),
    ]

    @pytest.mark.parametrize("first_text,second_text", PAIRS)
    def test_agreement(self, first_text, second_text):
        first, second = parse_query(first_text), parse_query(second_text)
        fast = quasilinear_equivalent(first, second)
        slow = local_equivalence(first, second)
        assert fast.equivalent == slow.equivalent

    def test_positive_projections_case_split(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, sum(y)) :- p(x, y), not s(y)")
        # Positive parts are isomorphic even though the queries are not equivalent.
        assert positive_projections_isomorphic(first, second)
        assert not quasilinear_equivalent(first, second).equivalent
