"""Tests for the multi-tenant service layer (:mod:`repro.service`).

Everything HTTP-shaped goes through a real server: ``start_in_thread``
boots the asyncio loop on a daemon thread and the tests talk to it with
stdlib ``http.client`` over the loopback, so request framing, routing,
error serialization, and the snapshot read path are exercised exactly as a
client would.  Protocol and admission logic are additionally unit-tested
without a socket.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro import Workspace
from repro.errors import ReproError, WorkerCrashError
from repro.obs import REGISTRY
from repro.service import (
    AddRequest,
    AdmissionError,
    AdmissionPolicy,
    ExplainRequest,
    ProtocolError,
    RewriteRequest,
    TenantRegistry,
    ViewRequest,
    clear_service_caches,
    error_payload,
    start_in_thread,
)
from repro.service import snapshots as snapshot_store
from repro.service.protocol import decode_body

#: A small catalog with equivalent, non-equivalent, and cross-aggregate
#: pairs, so matrices exercise several dispatch classes.
CATALOG = {
    "a": "q(x, sum(y)) :- p(x, y)",
    "b": "q(x, sum(z)) :- p(x, z)",
    "c": "q(x, max(y)) :- p(x, y)",
    "d": "q(x, count()) :- p(x, y), y > 0",
}


class Client:
    """A minimal JSON-over-HTTP client for the test server."""

    def __init__(self, address: tuple[str, int], timeout: float = 120.0):
        self.host, self.port = address
        self.timeout = timeout

    def request(self, method: str, path: str, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            conn.close()

    def fill(self, tenant: str, catalog: dict) -> None:
        for name, text in catalog.items():
            status, _data = self.request(
                "POST", f"/tenant/{tenant}/add", {"query": text, "name": name}
            )
            assert status == 200


@pytest.fixture
def service():
    handle = start_in_thread(workers=1)
    yield handle
    handle.stop()


def _verdicts(cells: list) -> dict:
    return {(cell["first"], cell["second"]): (cell["verdict"], cell["method"]) for cell in cells}


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_served_matrix_matches_direct_workspace(self, service):
        client = Client(service.address)
        client.fill("t", CATALOG)
        status, data = client.request("POST", "/tenant/t/equivalences")
        assert status == 200
        with Workspace(workers=1) as direct:
            for name, text in CATALOG.items():
                direct.add(text, name=name)
            expected = direct.equivalences()
        served = _verdicts(data["cells"])
        assert served.keys() == expected.keys()
        for pair, result in expected.items():
            assert served[pair] == (result.verdict.value, result.method)

    def test_snapshot_read_and_explain(self, service):
        client = Client(service.address)
        client.fill("t", CATALOG)
        status, decided = client.request("POST", "/tenant/t/equivalences")
        assert status == 200
        status, read = client.request("GET", "/tenant/t/equivalences")
        assert status == 200
        assert _verdicts(read["cells"]) == _verdicts(decided["cells"])
        assert read["version"] == decided["version"]

        status, explanation = client.request("GET", "/tenant/t/explain?first=b&second=a")
        assert status == 200
        assert explanation["pair"] == ["a", "b"]
        assert explanation["verdict"] == "equivalent"
        assert explanation["cache_served"] is False
        assert explanation["decision_path"] != "unknown"
        # Unsettled pairs stay errors — snapshot explains never decide.
        status, error = client.request("GET", "/tenant/t/explain?first=a&second=zzz")
        assert status == 400
        assert error["error"]["type"] == "ReproError"

    def test_view_registration_and_rewrite(self, service):
        client = Client(service.address)
        status, _data = client.request(
            "POST",
            "/tenant/t/view",
            {"name": "v", "definition": "v(x, y) :- p(x, y)"},
        )
        assert status == 200
        status, report = client.request(
            "POST", "/tenant/t/rewrite", {"query": "q(x, sum(y)) :- p(x, y)"}
        )
        assert status == 200
        with Workspace(workers=1) as direct:
            direct.register_view("v", "v(x, y) :- p(x, y)")
            expected = direct.rewrite("q(x, sum(y)) :- p(x, y)")
        assert [entry["name"] for entry in report["safe"]] == [
            verified.candidate.name for verified in expected.safe
        ]
        assert report["best"] == (
            expected.best.candidate.name if expected.best else None
        )

    def test_stats_and_metrics_surface_service_counters(self, service):
        client = Client(service.address)
        client.fill("t", dict(list(CATALOG.items())[:2]))
        status, _data = client.request("POST", "/tenant/t/equivalences")
        assert status == 200
        status, stats = client.request("GET", "/tenant/t/stats")
        assert status == 200
        assert stats["queries"] == 2
        assert stats["decided_cells"] == 1
        status, metrics = client.request("GET", "/metrics")
        assert status == 200
        service_counters = metrics["counters"]["service"]
        assert service_counters["requests"] >= 5
        assert service_counters["queue_depth"] == 0

    def test_healthz_and_tenant_listing(self, service):
        client = Client(service.address)
        status, health = client.request("GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")
        client.fill("t1", {"a": CATALOG["a"]})
        client.fill("t2", {"a": CATALOG["a"]})
        status, listing = client.request("GET", "/tenants")
        assert status == 200
        assert sorted(listing["tenants"]) == ["t1", "t2"]
        status, deleted = client.request("DELETE", "/tenant/t1")
        assert (status, deleted["deleted"]) == (200, "t1")
        status, listing = client.request("GET", "/tenants")
        assert listing["tenants"] == ["t2"]


# ----------------------------------------------------------------------
# Tenant isolation
# ----------------------------------------------------------------------
class TestTenantIsolation:
    def test_catalogs_and_matrices_do_not_leak_across_tenants(self, service):
        client = Client(service.address)
        client.fill("red", {"a": CATALOG["a"], "b": CATALOG["b"]})
        client.fill("blue", {"c": CATALOG["c"], "d": CATALOG["d"]})
        status, red = client.request("POST", "/tenant/red/equivalences")
        assert status == 200
        status, blue = client.request("POST", "/tenant/blue/equivalences")
        assert status == 200
        assert {cell["first"] for cell in red["cells"]} == {"a"}
        assert {cell["first"] for cell in blue["cells"]} == {"c"}
        # A name that exists in one tenant is a 400 in the other's explain.
        status, _err = client.request("GET", "/tenant/blue/explain?first=a&second=b")
        assert status == 400

    def test_versions_advance_independently(self, service):
        client = Client(service.address)
        client.fill("red", {"a": CATALOG["a"]})
        client.fill("blue", {"c": CATALOG["c"]})
        status, more = client.request(
            "POST", "/tenant/red/add", {"query": CATALOG["b"], "name": "b"}
        )
        assert (status, more["version"]) == (200, 2)
        status, read = client.request("GET", "/tenant/blue/equivalences")
        assert (status, read["version"]) == (200, 1)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_query_budget_rejects_with_429(self):
        handle = start_in_thread(
            workers=1, policy=AdmissionPolicy(max_queries=2)
        )
        try:
            client = Client(handle.address)
            client.fill("t", {"a": CATALOG["a"], "b": CATALOG["b"]})
            status, rejection = client.request(
                "POST", "/tenant/t/add", {"query": CATALOG["c"], "name": "c"}
            )
            assert status == 429
            assert rejection["error"]["code"] == "query-budget"
        finally:
            handle.stop()

    def test_policy_checks_raise_structured_admission_errors(self):
        policy = AdmissionPolicy(max_queries=3, max_queued=2)
        policy.admit_query(2)
        with pytest.raises(AdmissionError) as caught:
            policy.admit_query(3)
        status, payload = error_payload(caught.value)
        assert (status, payload["error"]["code"]) == (429, "query-budget")
        with pytest.raises(AdmissionError) as caught:
            policy.admit_mutation(2)
        assert caught.value.service_code == "queue-full"

    def test_policy_reads_environment(self):
        env = {
            "REPRO_SERVICE_MAX_TENANTS": "3",
            "REPRO_SERVICE_MAX_QUERIES": "7",
            "REPRO_SERVICE_MAX_SUBSETS": "1000",
            "REPRO_SERVICE_MAX_QUEUED": "2",
        }
        policy = AdmissionPolicy.from_env(env)
        assert (policy.max_tenants, policy.max_queries) == (3, 7)
        assert (policy.max_subsets, policy.max_queued) == (1000, 2)
        with pytest.raises(ReproError):
            AdmissionPolicy.from_env({"REPRO_SERVICE_MAX_QUEUED": "zero"})
        with pytest.raises(ReproError):
            AdmissionPolicy.from_env({"REPRO_SERVICE_MAX_TENANTS": "0"})


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_eviction_closes_workspace_and_drops_snapshot(self):
        handle = start_in_thread(
            workers=1, policy=AdmissionPolicy(max_tenants=2)
        )
        try:
            client = Client(handle.address)
            client.fill("t1", {"a": CATALOG["a"]})
            client.fill("t2", {"a": CATALOG["a"]})
            # HTTP reads are recency touches too: after this GET the order
            # is t2 (oldest), t1.  Grabbing references below via
            # ``registry.get`` also touches, so grab the victim first.
            status, _stats = client.request("GET", "/tenant/t1/stats")
            assert status == 200
            victim = handle.service.registry.get("t2")
            survivor = handle.service.registry.get("t1")
            # A third tenant now evicts t2 through Workspace.close().
            client.fill("t3", {"a": CATALOG["a"]})
            status, listing = client.request("GET", "/tenants")
            assert sorted(listing["tenants"]) == ["t1", "t3"]
            assert victim.workspace.closed
            assert not survivor.workspace.closed
            assert snapshot_store.current(victim.key) is None
            status, _err = client.request("GET", "/tenant/t2/stats")
            assert status == 404
        finally:
            handle.stop()

    def test_clear_service_caches_closes_every_tenant(self):
        policy = AdmissionPolicy(max_tenants=4)
        registry = TenantRegistry(policy=policy, workers=1)
        tenant = registry.get_or_create("ephemeral")
        tenant.workspace.add(CATALOG["a"], name="a")
        snapshot_store.publish(tenant.key, tenant.name, 1, tenant.workspace)
        assert snapshot_store.current(tenant.key) is not None
        clear_service_caches()
        assert tenant.workspace.closed
        assert snapshot_store.current(tenant.key) is None
        assert len(registry) == 0


# ----------------------------------------------------------------------
# Protocol errors
# ----------------------------------------------------------------------
class TestProtocolErrors:
    def test_malformed_json_and_missing_fields_are_400(self, service):
        client = Client(service.address)
        conn = http.client.HTTPConnection(*service.address, timeout=30)
        try:
            conn.request("POST", "/tenant/t/add", body=b"{not json")
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
            assert response.status == 400
            assert payload["error"]["code"] == "bad-request"
        finally:
            conn.close()
        status, payload = client.request("POST", "/tenant/t/add", {"name": "a"})
        assert (status, payload["error"]["code"]) == (400, "bad-request")

    def test_query_syntax_error_maps_to_structured_400(self, service):
        client = Client(service.address)
        status, payload = client.request(
            "POST", "/tenant/t/add", {"query": "q(x :-"}
        )
        assert status == 400
        assert payload["error"]["code"] == "query-syntax"
        assert "position" in payload["error"]["message"]

    def test_unknown_tenant_and_route_are_404(self, service):
        client = Client(service.address)
        status, payload = client.request("GET", "/tenant/nope/stats")
        assert (status, payload["error"]["code"]) == (404, "unknown-tenant")
        status, payload = client.request("GET", "/nope")
        assert (status, payload["error"]["code"]) == (404, "not-found")
        status, payload = client.request("DELETE", "/tenant/nope")
        assert (status, payload["error"]["code"]) == (404, "unknown-tenant")

    def test_bad_tenant_name_is_rejected(self, service):
        client = Client(service.address)
        status, payload = client.request(
            "POST", "/tenant/bad.name/add", {"query": CATALOG["a"]}
        )
        assert (status, payload["error"]["code"]) == (400, "bad-request")

    def test_request_dataclasses_validate_fields(self):
        assert AddRequest.from_payload({"query": "q() :- p(1)"}).name is None
        with pytest.raises(ProtocolError):
            AddRequest.from_payload({"query": 7})
        with pytest.raises(ProtocolError):
            ViewRequest.from_payload({"sql": "CREATE ...", "name": "v"})
        with pytest.raises(ProtocolError):
            ViewRequest.from_payload({"name": "v"})
        with pytest.raises(ProtocolError):
            RewriteRequest.from_payload({"query": "q() :- p(1)", "limit": -1})
        with pytest.raises(ProtocolError):
            RewriteRequest.from_payload({"query": "q() :- p(1)", "limit": True})
        request = ExplainRequest.from_payload({"first": "a", "second": "b"})
        assert (request.first, request.second) == ("a", "b")
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2]")

    def test_worker_crash_error_serializes_as_retryable_503(self):
        status, payload = error_payload(WorkerCrashError("pool worker died"))
        assert status == 503
        assert payload["error"]["code"] == "worker-crashed"
        assert payload["error"]["retryable"] is True
        assert payload["error"]["retry_after_s"] >= 1


# ----------------------------------------------------------------------
# Crash recovery over HTTP
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_worker_kill_yields_503_then_retry_heals(self):
        handle = start_in_thread(workers=2)
        try:
            client = Client(handle.address)
            client.fill("c", CATALOG)
            status, _data = client.request("POST", "/tenant/c/equivalences")
            assert status == 200
            executor = handle.service.registry.get("c").workspace.executor
            assert executor is not None and executor.alive
            heals_before = REGISTRY.get("parallel.pool.heals")

            # Grow the delta so the next sweep has real in-flight work, then
            # kill every pool worker while (or just before) it runs.
            for index in range(6):
                status, _data = client.request(
                    "POST",
                    "/tenant/c/add",
                    {
                        "query": f"q(x, sum(y)) :- p(x, y), y > {index}",
                        "name": f"grow_{index}",
                    },
                )
                assert status == 200

            responses = []

            def mutate():
                responses.append(client.request("POST", "/tenant/c/equivalences"))

            mutation = threading.Thread(target=mutate)
            mutation.start()
            deadline = time.monotonic() + 10.0
            killed = False
            while not killed and time.monotonic() < deadline:
                pool = getattr(executor, "_pool", None)
                workers = list(getattr(pool, "_pool", []) or [])
                for process in workers:
                    if process.pid is not None:
                        try:
                            os.kill(process.pid, signal.SIGKILL)
                            killed = True
                        except ProcessLookupError:
                            pass
                time.sleep(0.01)
            mutation.join(120.0)
            assert not mutation.is_alive()
            assert killed, "never saw a pool worker to kill"

            status, payload = responses[0]
            if status != 503:
                # The sweep finished before the kill landed; the dead pool
                # is then detected at the next dispatch, before any work.
                assert status == 200
                status, payload = client.request("POST", "/tenant/c/equivalences")
            assert status == 503
            assert payload["error"]["code"] == "worker-crashed"
            assert payload["error"]["retryable"] is True

            # The retry the 503 asked for: the executor re-forks and the
            # full matrix comes back.
            status, payload = client.request("POST", "/tenant/c/equivalences")
            assert status == 200
            expected_cells = 10 * 9 // 2
            assert len(payload["cells"]) == expected_cells
            assert REGISTRY.get("parallel.pool.heals") > heals_before
            status, metrics = client.request("GET", "/metrics")
            assert metrics["counters"]["parallel"]["pool.heals"] > heals_before
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Serial / parallel parity
# ----------------------------------------------------------------------
class TestWorkerParity:
    def test_serial_and_two_worker_services_agree(self):
        # Both services run in one process, so they share the process-wide
        # verdict store: the serial service decides every cell, and the
        # two-worker service may legitimately serve some (or all) of its
        # cells from the store instead of re-deciding them.  Parity is on
        # the *matrices*; the counters must only be consistent — every cell
        # of the second run is either decided fresh or store-served.
        matrices = {}
        stats_by_workers = {}
        for workers in (1, 2):
            handle = start_in_thread(workers=workers)
            try:
                client = Client(handle.address)
                client.fill("p", CATALOG)
                status, data = client.request("POST", "/tenant/p/equivalences")
                assert status == 200
                matrices[workers] = _verdicts(data["cells"])
                status, stats = client.request("GET", "/tenant/p/stats")
                assert status == 200
                stats_by_workers[workers] = stats
            finally:
                handle.stop()
        assert matrices[1] == matrices[2]
        assert stats_by_workers[1]["queries"] == stats_by_workers[2]["queries"]
        cells = len(matrices[1])
        first, second = stats_by_workers[1], stats_by_workers[2]
        for stats in (first, second):
            settled = stats["decided_cells"] + stats["verdict_cache_hits"] + stats["store_hits"]
            assert settled == cells
        assert first["store_hits"] == 0
        assert second["decided_cells"] <= first["decided_cells"]


# ----------------------------------------------------------------------
# Cross-tenant verdict sharing
# ----------------------------------------------------------------------
class TestCrossTenantStore:
    def test_tenants_share_renamed_duplicates_through_the_store(self, service):
        """Tenant A's settled cells serve tenant B's variable-renamed
        duplicates through the process-wide verdict store: B re-decides
        nothing, and the two matrices agree cell for cell."""
        renamed = {
            "a": "q(u, sum(v)) :- p(u, v)",
            "b": "q(n, sum(m)) :- p(n, m)",
            "c": "q(k, max(j)) :- p(k, j)",
            "d": "q(t, count()) :- p(t, s), s > 0",
        }
        client = Client(service.address)
        client.fill("alpha", CATALOG)
        status, first = client.request("POST", "/tenant/alpha/equivalences")
        assert status == 200
        client.fill("beta", renamed)
        status, second = client.request("POST", "/tenant/beta/equivalences")
        assert status == 200
        assert _verdicts(first["cells"]) == _verdicts(second["cells"])
        status, stats = client.request("GET", "/tenant/beta/stats")
        assert status == 200
        assert stats["decided_cells"] == 0
        assert stats["store_hits"] == len(second["cells"])
