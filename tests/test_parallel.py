"""Tests for the parallel decision subsystem (:mod:`repro.parallel`).

Covers the orbit-canonical subset enumeration (pinned against the legacy
permutation-scan canonicalization), differential serial-vs-parallel checks
for ``bounded_equivalence`` and ``equivalence_matrix``, executor behaviour
(early exit, deterministic merge, worker defaults), seed threading, and the
sum→count pre-dispatch normalization.
"""

import os

import pytest

from repro import Verdict, parse_query
from repro.core import SharedBaseContext, normalize_for_dispatch
from repro.core.bounded import (
    CanonicalSubsetEnumerator,
    _canonical_subset,
    _iterate_subsets,
    bounded_equivalence,
    build_base,
)
from repro.datalog.queries import term_size_of_pair
from repro.engine import evaluate_aggregate, evaluate_bag_set, evaluate_set
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    bounded_check_tasks,
    derive_pair_seed,
    resolve_executor,
    run_bounded_check_task,
)
from repro.workloads import QueryGenerator, QueryProfile, build_warehouse, equivalence_matrix

# ----------------------------------------------------------------------
# Orbit-canonical enumeration
# ----------------------------------------------------------------------
ENUMERATION_CASES = [
    ("q(count()) :- p(y), not r(y)", "q(count()) :- p(y)", 2),
    ("q(max(y)) :- p(y), y > 3", "q(max(y)) :- p(y), r(y, y)", 2),
    ("q(sum(y)) :- p(y, z)", "q(sum(y)) :- p(y, w)", 2),
    ("q(count()) :- p(y)", "q(count()) :- p(y), not r(y)", 3),
]


class TestCanonicalEnumeration:
    @pytest.mark.parametrize("first_text,second_text,bound", ENUMERATION_CASES)
    def test_pinned_against_legacy_scan(self, first_text, second_text, bound):
        """The enumerator must generate exactly the canonical representatives
        the legacy |fresh|! permutation scan selects — same subsets, and the
        exact count of skipped symmetry duplicates."""
        first, second = parse_query(first_text), parse_query(second_text)
        _, base, fresh = build_base(first, second, bound)
        enumerator = CanonicalSubsetEnumerator(base, fresh)
        generated = [frozenset(enumerator.base[i] for i in indices) for indices in enumerator]
        legacy = [
            subset for subset, skipped in _iterate_subsets(base, fresh, True) if not skipped
        ]
        assert set(generated) == set(legacy)
        assert len(generated) == len(legacy)  # no duplicates generated
        assert len(generated) + enumerator.skipped == 2 ** len(base)
        # Every generated representative is a fixed point of the legacy
        # canonicalization.
        for subset in generated:
            assert _canonical_subset(subset, fresh) == subset

    def test_single_fresh_variable_enumerates_everything(self):
        first = parse_query("q(count()) :- p(y)")
        _, base, fresh = build_base(first, first, 1)
        enumerator = CanonicalSubsetEnumerator(base, fresh)
        assert len(list(enumerator)) == 2 ** len(base)
        assert enumerator.skipped == 0

    def test_sizes_ascend(self):
        first = parse_query("q(count()) :- p(y), not r(y)")
        _, base, fresh = build_base(first, first, 2)
        sizes = [len(indices) for indices in CanonicalSubsetEnumerator(base, fresh)]
        assert sizes == sorted(sizes)


# ----------------------------------------------------------------------
# Differential: serial vs parallel bounded equivalence
# ----------------------------------------------------------------------
DIFFERENTIAL_PAIRS = [
    ("q(count()) :- p(y), not r(y)", "q(count()) :- p(y)", 2, None),
    ("q(max(y)) :- p(y)", "q(max(y)) :- p(y) ; p(y)", 2, None),
    ("q(sum(y)) :- p(y)", "q(sum(y)) :- p(y) ; p(y)", 2, None),
    ("q(count()) :- p(y), p(z), y < z", "q(count()) :- p(y), p(z), y != z", 2, None),
    ("q(x) :- p(x, y)", "q(x) :- p(x, y), p(x, z)", 2, "set"),
    ("q(x) :- p(x, y)", "q(x) :- p(x, y), p(x, z)", 2, "bag-set"),
]


def _witness_is_valid(first, second, counterexample, semantics):
    database = counterexample.database
    if database is None:
        # Non-shiftable corner: only the symbolic context could be reported.
        return counterexample.symbolic_atoms is not None
    if first.is_aggregate:
        return evaluate_aggregate(first, database) != evaluate_aggregate(second, database)
    if semantics == "bag-set":
        return evaluate_bag_set(first, database) != evaluate_bag_set(second, database)
    return evaluate_set(first, database) != evaluate_set(second, database)


class TestDifferentialBounded:
    @pytest.mark.parametrize("first_text,second_text,bound,semantics", DIFFERENTIAL_PAIRS)
    def test_serial_and_parallel_agree(self, first_text, second_text, bound, semantics):
        first, second = parse_query(first_text), parse_query(second_text)
        kwargs = {"semantics": semantics} if semantics else {}
        serial = bounded_equivalence(first, second, bound, workers=1, **kwargs)
        parallel = bounded_equivalence(
            first, second, bound, workers=2, parallel_threshold=0, **kwargs
        )
        assert serial.equivalent == parallel.equivalent
        assert parallel.workers_used == 2
        if serial.equivalent:
            # A complete sweep must examine the identical canonical space.
            assert serial.subsets_examined == parallel.subsets_examined
            assert serial.orderings_examined == parallel.orderings_examined
            assert serial.identities_checked == parallel.identities_checked
            assert (
                serial.subsets_skipped_by_symmetry == parallel.subsets_skipped_by_symmetry
            )
        else:
            assert parallel.counterexample is not None
            assert _witness_is_valid(
                first, second, parallel.counterexample, semantics or "set"
            )
            assert _witness_is_valid(
                first, second, serial.counterexample, semantics or "set"
            )

    def test_generated_pairs_agree(self):
        """Differential property test over generated query pairs."""
        profile = QueryProfile(
            predicates={"p": 1, "r": 1},
            grouping_variables=1,
            aggregation_function="count",
            max_disjuncts=2,
            max_positive_atoms=2,
            max_negated_atoms=1,
            max_comparisons=0,
            constants=(),
        )
        generator = QueryGenerator(profile, seed=11)
        checked = 0
        while checked < 4:
            first, second = generator.query_pair()
            _, base, _ = build_base(first, second, 2)
            if 2 ** len(base) > 4096:
                continue
            serial = bounded_equivalence(first, second, 2, workers=1)
            parallel = bounded_equivalence(first, second, 2, workers=2, parallel_threshold=0)
            assert serial.equivalent == parallel.equivalent, (first, second)
            if not serial.equivalent:
                assert _witness_is_valid(first, second, parallel.counterexample, "set")
            checked += 1

    def test_parallel_witnesses_are_valid_across_runs(self):
        # The verdict is scheduling-independent; the particular witness may
        # vary under early-exit cancellation races, but every witness must be
        # valid (the fully reproducible path is workers=1).
        first = parse_query("q(sum(y)) :- p(y)")
        second = parse_query("q(sum(y)) :- p(y), not r(y)")
        runs = [
            bounded_equivalence(first, second, 2, workers=2, parallel_threshold=0)
            for _ in range(2)
        ]
        for report in runs:
            assert not report.equivalent
            assert _witness_is_valid(first, second, report.counterexample, "set")


# ----------------------------------------------------------------------
# Differential: serial vs parallel equivalence matrix
# ----------------------------------------------------------------------
def _matrix_catalog():
    warehouse = build_warehouse(stores=2, products=3, sales_per_store=4, seed=3)
    catalog = {
        name: warehouse.queries[name]
        for name in ("revenue_per_store", "revenue_per_store_alt", "largest_sale")
    }
    catalog["unit_sales"] = parse_query("units(s, sum(u)) :- sales(s, p, a), u = 1")
    catalog["sales_count"] = parse_query("units(s, count()) :- sales(s, p, a)")
    catalog["plain"] = parse_query("q(s) :- sales(s, p, a)")
    return catalog


class TestDifferentialMatrix:
    def test_serial_and_parallel_matrices_agree(self):
        catalog = _matrix_catalog()
        serial = equivalence_matrix(catalog, workers=1, seed=5, counterexample_trials=60)
        parallel = equivalence_matrix(catalog, workers=2, seed=5, counterexample_trials=60)
        assert set(serial) == set(parallel)
        for pair, serial_result in serial.items():
            parallel_result = parallel[pair]
            assert serial_result.verdict is parallel_result.verdict, pair
            # Seeded witness searches make even the witnesses identical.
            if serial_result.counterexample is not None:
                assert parallel_result.counterexample is not None
                assert (
                    serial_result.counterexample.database
                    == parallel_result.counterexample.database
                ), pair

    def test_normalization_settles_pinned_sum_in_matrix(self):
        catalog = _matrix_catalog()
        results = equivalence_matrix(catalog, counterexample_trials=60)
        result = results[("sales_count", "unit_sales")]
        assert result.verdict is Verdict.EQUIVALENT
        assert "normalization" in result.method
        unnormalized = equivalence_matrix(
            catalog, normalize=False, counterexample_trials=60
        )
        assert unnormalized[("sales_count", "unit_sales")].verdict is Verdict.UNKNOWN

    def test_seeded_matrix_is_reproducible(self):
        catalog = _matrix_catalog()
        first = equivalence_matrix(catalog, seed=9, counterexample_trials=60)
        second = equivalence_matrix(catalog, seed=9, counterexample_trials=60)
        for pair in first:
            assert first[pair].verdict is second[pair].verdict
            left, right = first[pair].counterexample, second[pair].counterexample
            assert (left is None) == (right is None)
            if left is not None:
                assert left.database == right.database

    def test_shared_base_matches_pair_local(self):
        queries = {
            "a": parse_query("q(x) :- p(x, y)"),
            "b": parse_query("q(x) :- p(x, y), p(x, z)"),
            "c": parse_query("q(x) :- p(x, x)"),
        }
        shared = equivalence_matrix(queries, shared_base=True)
        local = equivalence_matrix(queries, shared_base=False)
        for pair in shared:
            assert shared[pair].verdict is local[pair].verdict, pair


# ----------------------------------------------------------------------
# Shared base context
# ----------------------------------------------------------------------
class TestSharedBaseContext:
    def test_bound_dominates_every_pair(self):
        catalog = _matrix_catalog()
        context = SharedBaseContext.from_catalog(catalog.values())
        queries = list(catalog.values())
        for position, first in enumerate(queries):
            for second in queries[position + 1 :]:
                if first.is_aggregate == second.is_aggregate:
                    assert context.bound >= term_size_of_pair(first, second)

    def test_incomparable_catalog_has_no_context(self):
        queries = [
            parse_query("q(x, sum(y)) :- p(x, y)"),
            parse_query("q(x) :- p(x, y)"),
        ]
        assert SharedBaseContext.from_catalog(queries) is None


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_serial_executor_stops_early(self):
        seen = []

        def worker(task):
            seen.append(task)
            return task

        outcomes = SerialExecutor().run(worker, [1, 2, 3, 4], stop=lambda value: value == 2)
        assert outcomes == [1, 2]
        assert seen == [1, 2]

    def test_process_executor_returns_every_outcome(self):
        executor = ProcessExecutor(workers=2)
        outcomes = executor.run(_square, [1, 2, 3, 4, 5])
        assert sorted(outcomes) == [1, 4, 9, 16, 25]

    def test_resolve_executor_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = resolve_executor(None)
        assert isinstance(executor, ProcessExecutor) and executor.workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert isinstance(resolve_executor(None), SerialExecutor)
        monkeypatch.delenv("REPRO_WORKERS")
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_bounded_tasks_round_robin_and_cover(self):
        first = parse_query("q(count()) :- p(y), not r(y)")
        second = parse_query("q(count()) :- p(y)")
        from repro.domains import Domain

        _, base, fresh = build_base(first, second, 2)
        enumerator = CanonicalSubsetEnumerator(base, fresh)
        subsets = list(enumerator)
        tasks = bounded_check_tasks(
            first, second, 2, Domain.RATIONALS, "set", (), subsets, shards=3
        )
        positions = sorted(
            position for task in tasks for position, _ in task.chunk
        )
        assert positions == list(range(len(subsets)))
        sizes = [len(task.chunk) for task in tasks]
        assert max(sizes) - min(sizes) <= 1
        # Shards are independently executable.
        outcome = run_bounded_check_task(tasks[0])
        assert outcome.stats.subsets_examined == len(tasks[0].chunk)


# ----------------------------------------------------------------------
# Seeds
# ----------------------------------------------------------------------
class TestSeeds:
    def test_derive_pair_seed_is_stable(self):
        assert derive_pair_seed(7, "a", "b") == derive_pair_seed(7, "a", "b")
        assert derive_pair_seed(7, "a", "b") != derive_pair_seed(8, "a", "b")
        assert derive_pair_seed(None, "a", "b") is None

    def test_find_counterexample_seed_controls_search(self):
        from repro.core import find_counterexample

        first = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, sum(y)) :- p(x, y), y > 1")
        one = find_counterexample(first, second, seed=13)
        two = find_counterexample(first, second, seed=13)
        assert one is not None and one == two


# ----------------------------------------------------------------------
# Normalization (unit level)
# ----------------------------------------------------------------------
class TestNormalization:
    def test_pinned_sum_rewrites_to_count(self):
        query = parse_query("q(s, sum(u)) :- p(s, a), u = 1")
        rewritten, note = normalize_for_dispatch(query)
        assert note is not None
        assert rewritten.aggregate.function == "count"
        assert rewritten.disjuncts == query.disjuncts

    def test_pin_must_hold_in_every_disjunct(self):
        query = parse_query("q(s, sum(u)) :- p(s, u), u = 1 ; p(s, u)")
        rewritten, note = normalize_for_dispatch(query)
        assert note is None and rewritten is query

    def test_pin_to_other_constants_is_ignored(self):
        query = parse_query("q(s, sum(u)) :- p(s, a), u = 2")
        _, note = normalize_for_dispatch(query)
        assert note is None

    def test_non_sum_queries_untouched(self):
        query = parse_query("q(s, max(u)) :- p(s, u), u = 1")
        _, note = normalize_for_dispatch(query)
        assert note is None

    def test_reversed_equality_is_recognized(self):
        query = parse_query("q(s, sum(u)) :- p(s, a), 1 = u")
        _, note = normalize_for_dispatch(query)
        assert note is not None

    def test_one_sided_normalization_never_downgrades_same_function_pairs(self):
        # Both queries are sum-queries and equivalent; only the first has an
        # equality pin (the second pins u semantically via u >= 1, u <= 1,
        # which the equality-chain propagation deliberately does not chase).
        # Rewriting just one side would push the pair from the decidable
        # sum/sum class into the different-function open fragment — the
        # dispatcher must keep the originals instead.
        from repro.core import are_equivalent

        first = parse_query("q(s, sum(u)) :- r(s, u), u = 1")
        second = parse_query("q(s, sum(u)) :- r(s, u), u >= 1, u <= 1")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "normalization" not in result.method


class TestGuards:
    def test_search_space_guard_fires_before_ordering_enumeration(self):
        # At bound 8 the ordering space (ordered set partitions of 8 terms)
        # is in the millions; the subset-budget guard must raise from the
        # arithmetic size check, not after enumerating orderings.
        from repro.errors import ReproError

        first = parse_query("q(count()) :- p(y, z)")
        start = __import__("time").perf_counter()
        with pytest.raises(ReproError):
            bounded_equivalence(first, first, 8)
        assert __import__("time").perf_counter() - start < 1.0

    def test_explicit_executor_is_honored_for_tiny_spaces(self):
        class RecordingExecutor:
            workers = 1

            def __init__(self):
                self.calls = 0

            def run(self, worker, tasks, stop=None):
                self.calls += 1
                return SerialExecutor().run(worker, tasks, stop)

        executor = RecordingExecutor()
        first = parse_query("q(count()) :- p(y)")
        report = bounded_equivalence(first, first, 1, executor=executor)
        assert report.equivalent
        assert executor.calls == 1


def _square(value):
    return value * value


def _poison(value):
    """Pool-worker task: ``"poison"`` SIGKILLs the executing worker mid-run —
    the genuine crash the persistent executor must observe and surface."""
    if value == "poison":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


class TestWorkerCrashRecovery:
    """A worker death marks the pool dead *before* outcomes are merged, the
    crash surfaces as the structured retryable error, and the next run
    re-forks (the auto-heal counted by ``parallel.pool.heals``)."""

    def test_poison_task_raises_and_marks_pool_dead(self):
        from repro.errors import WorkerCrashError
        from repro.obs import REGISTRY
        from repro.parallel import PersistentProcessExecutor

        heals_before = REGISTRY.get("parallel.pool.heals")
        executor = PersistentProcessExecutor(2)
        try:
            warm = executor.run(_poison, ["a", "b", "c", "d"])
            assert sorted(warm) == ["aa", "bb", "cc", "dd"]
            assert executor.alive and executor.forks == 1

            with pytest.raises(WorkerCrashError):
                executor.run(_poison, ["a", "poison", "b", "c"])
            # The half-drained generation is never merged: the pool is
            # already dead when the error reaches the caller.
            assert not executor.alive

            healed = executor.run(_poison, ["a", "b", "c", "d"])
            assert sorted(healed) == ["aa", "bb", "cc", "dd"]
            assert executor.forks == 2
            assert REGISTRY.get("parallel.pool.heals") == heals_before + 1
        finally:
            executor.close()

    def test_idle_worker_death_surfaces_on_next_run(self):
        import signal
        import time

        from repro.errors import WorkerCrashError
        from repro.parallel import PersistentProcessExecutor

        executor = PersistentProcessExecutor(2)
        try:
            executor.run(_poison, ["a", "b", "c", "d"])
            victim = next(iter(executor._pids))
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.3)  # let the kill land before the next run
            with pytest.raises(WorkerCrashError):
                executor.run(_poison, ["a", "b", "c", "d"])
            assert not executor.alive
            healed = executor.run(_poison, ["x", "y"])
            assert sorted(healed) == ["xx", "yy"]
        finally:
            executor.close()

    def test_worker_exception_still_discards_pool(self):
        from repro.parallel import PersistentProcessExecutor

        executor = PersistentProcessExecutor(2)
        try:
            with pytest.raises(TypeError):
                executor.run(_square, ["a", None, "b", "c"])
            assert not executor.alive
            healed = executor.run(_square, [2, 3])
            assert sorted(healed) == [4, 9]
        finally:
            executor.close()


class TestRangeShippingShards:
    """The (start, count) range shards vs the row-shipping reference."""

    def test_block_cyclic_ranges_cover_the_span(self):
        from repro.parallel import block_cyclic_ranges

        for start, count, shards in [(0, 1, 1), (10, 23, 3), (5, 100, 7), (0, 8, 16)]:
            ranges = block_cyclic_ranges(start, count, shards)
            positions = sorted(
                position
                for blocks in ranges
                for (block_start, block_count) in blocks
                for position in range(block_start, block_start + block_count)
            )
            assert positions == list(range(start, start + count))
            assert len(ranges) <= shards
        assert block_cyclic_ranges(0, 0, 4) == []

    @pytest.mark.parametrize("ship", ["rows", "ranges"])
    def test_sweep_ship_modes_agree(self, ship):
        from repro.core.bounded import sweep_equivalence

        catalog = {
            "a": parse_query("q(count()) :- p(y), r(y)"),
            "b": parse_query("q(count()) :- r(y), p(y)"),
            "c": parse_query("q(count()) :- p(y)"),
            "d": parse_query("q(count()) :- p(y), r(y), s(y, y)"),
        }
        pairs = [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c")]
        reports = sweep_equivalence(
            catalog, pairs, 2, executor=ProcessExecutor(2), seed=11, ship=ship
        )
        verdicts = {pair: report.equivalent for pair, report in reports.items()}
        assert verdicts == {
            ("a", "b"): True,
            ("a", "c"): False,
            ("a", "d"): False,
            ("b", "c"): False,
        }
        for pair, report in reports.items():
            if not report.equivalent:
                assert report.counterexample is not None

    def test_range_tasks_ship_smaller_pickles(self):
        import pickle

        from repro.core.bounded import CanonicalSubsetEnumerator, prepare_sweep_run
        from repro.parallel import sweep_check_tasks, sweep_range_tasks
        from repro.domains import Domain

        catalog = {
            "a": parse_query("q(count()) :- p(x, y)"),
            "b": parse_query("q(count()) :- p(y, x)"),
        }
        queries = tuple(catalog.items())
        pairs = (("a", "b"),)
        setup = prepare_sweep_run(catalog, 4, Domain.RATIONALS, "set", ())
        subsets = [
            (position, indices)
            for position, indices in enumerate(CanonicalSubsetEnumerator(setup.base, setup.fresh))
        ]
        assert len(subsets) > 1000  # large enough for payloads to dominate
        rows = sweep_check_tasks(
            queries, pairs, 4, Domain.RATIONALS, "set", (), subsets, 4, seed=1
        )
        ranges = sweep_range_tasks(
            queries, pairs, 4, Domain.RATIONALS, "set", (), 0, len(subsets), 4, seed=1
        )
        assert len(pickle.dumps(ranges)) < len(pickle.dumps(rows)) / 10

    def test_range_worker_reenumerates_identically(self):
        from repro.core.bounded import CanonicalSubsetEnumerator, prepare_sweep_run
        from repro.parallel import run_sweep_check_task, run_sweep_range_task
        from repro.parallel import sweep_check_tasks, sweep_range_tasks
        from repro.domains import Domain

        catalog = {
            "a": parse_query("q(count()) :- p(y), r(y)"),
            "b": parse_query("q(count()) :- p(y)"),
        }
        queries = tuple(catalog.items())
        pairs = (("a", "b"),)
        setup = prepare_sweep_run(catalog, 2, Domain.RATIONALS, "set", ())
        subsets = list(enumerate(CanonicalSubsetEnumerator(setup.base, setup.fresh)))
        (rows_task,) = sweep_check_tasks(
            queries, pairs, 2, Domain.RATIONALS, "set", (), subsets, 1, seed=3
        )
        (range_task,) = sweep_range_tasks(
            queries, pairs, 2, Domain.RATIONALS, "set", (), 0, len(subsets), 1, seed=3
        )
        rows_outcome = run_sweep_check_task(rows_task)
        range_outcome = run_sweep_range_task(range_task)
        assert [f[0:2] for f in rows_outcome.found] == [f[0:2] for f in range_outcome.found]
        assert rows_outcome.stats.subsets_examined == range_outcome.stats.subsets_examined
