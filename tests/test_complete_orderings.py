"""Tests for complete orderings (Section 4.2)."""

from fractions import Fraction

import pytest

from repro.datalog import Comparison, ComparisonOp, Constant, Variable
from repro.domains import Domain
from repro.errors import UnsatisfiableOrderingError
from repro.orderings import (
    CompleteOrdering,
    count_complete_orderings,
    enumerate_complete_orderings,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def ordering(blocks, domain=Domain.RATIONALS):
    return CompleteOrdering(tuple(frozenset(block) for block in blocks), domain)


class TestConstruction:
    def test_valid_ordering(self):
        L = ordering([{Constant(0)}, {X, Y}, {Constant(5), Z}])
        assert L.term_count == 5
        assert L.block_index(X) == 1
        assert L.constant_of(2) == Constant(5)

    def test_two_constants_in_one_block_rejected(self):
        with pytest.raises(UnsatisfiableOrderingError):
            ordering([{Constant(0), Constant(1)}])

    def test_constants_must_increase(self):
        with pytest.raises(UnsatisfiableOrderingError):
            ordering([{Constant(5)}, {Constant(1)}])

    def test_empty_block_rejected(self):
        with pytest.raises(UnsatisfiableOrderingError):
            ordering([set()])

    def test_representative_prefers_constant(self):
        L = ordering([{X, Constant(3)}])
        assert L.representative(0) == Constant(3)
        L2 = ordering([{X, Y}])
        assert L2.representative(0) == X  # lexicographically smallest variable


class TestOrderRelation:
    def test_compare_and_satisfies(self):
        L = ordering([{X}, {Y, Constant(2)}, {Z}])
        assert L.compare(X, Y) == -1
        assert L.compare(Y, Constant(2)) == 0
        assert L.compare(Z, X) == 1
        assert L.satisfies(Comparison(X, ComparisonOp.LT, Z))
        assert L.satisfies(Comparison(Y, ComparisonOp.EQ, Constant(2)))
        assert L.satisfies(Comparison(Z, ComparisonOp.NE, X))
        assert not L.satisfies(Comparison(Z, ComparisonOp.LE, X))

    def test_unknown_term_raises(self):
        L = ordering([{X}])
        with pytest.raises(KeyError):
            L.block_index(Y)

    def test_to_comparisons_axiomatizes_the_order(self):
        L = ordering([{X, Y}, {Z}])
        comparisons = L.to_comparisons()
        assert Comparison(Y, ComparisonOp.EQ, X) in comparisons or Comparison(
            X, ComparisonOp.EQ, Y
        ) in comparisons
        assert any(c.op is ComparisonOp.LT for c in comparisons)


class TestDiscreteSatisfiability:
    def test_dense_always_satisfiable(self):
        L = ordering([{Constant(0)}, {X}, {Y}, {Constant(1)}], Domain.RATIONALS)
        assert L.is_satisfiable()

    def test_discrete_gap_check(self):
        L = ordering([{Constant(0)}, {X}, {Y}, {Constant(1)}], Domain.INTEGERS)
        assert not L.is_satisfiable()
        L2 = ordering([{Constant(0)}, {X}, {Constant(2)}], Domain.INTEGERS)
        assert L2.is_satisfiable()

    def test_unbounded_sides_always_fit(self):
        L = ordering([{X}, {Y}, {Constant(0)}, {Z}], Domain.INTEGERS)
        assert L.is_satisfiable()

    def test_fractional_constant_unsatisfiable_over_integers(self):
        L = ordering([{Constant(Fraction(1, 2))}, {X}], Domain.INTEGERS)
        assert not L.is_satisfiable()


class TestPinning:
    def test_forced_value_between_constants(self):
        L = ordering([{Constant(3)}, {X}, {Constant(5)}], Domain.INTEGERS)
        assert L.forced_value(1) == 4
        assert L.pinned_blocks() == {0: 3, 1: 4, 2: 5}
        assert L.free_block_indices() == []
        assert L.canonical_term(X) == Constant(4)

    def test_not_forced_when_gap_is_larger(self):
        L = ordering([{Constant(3)}, {X}, {Constant(6)}], Domain.INTEGERS)
        assert L.forced_value(1) is None
        assert L.free_block_indices() == [1]
        assert L.canonical_term(X) == X

    def test_never_forced_over_rationals(self):
        L = ordering([{Constant(3)}, {X}, {Constant(4)}], Domain.RATIONALS)
        assert L.forced_value(1) is None

    def test_unbounded_block_not_forced(self):
        L = ordering([{Constant(3)}, {X}], Domain.INTEGERS)
        assert L.forced_value(1) is None

    def test_chain_of_forced_blocks(self):
        L = ordering([{Constant(0)}, {X}, {Y}, {Constant(3)}], Domain.INTEGERS)
        assert L.forced_value(1) == 1 and L.forced_value(2) == 2


class TestInstantiation:
    @pytest.mark.parametrize("dom", [Domain.RATIONALS, Domain.INTEGERS])
    def test_instantiation_is_consistent(self, dom):
        L = ordering([{X}, {Constant(0)}, {Y}, {Z}, {Constant(4)}], dom)
        assert L.is_satisfiable()
        assignment = L.instantiate()
        assert assignment[Constant(0)] == 0 and assignment[Constant(4)] == 4
        values = [assignment[X], assignment[Constant(0)], assignment[Y], assignment[Z], assignment[Constant(4)]]
        assert all(Fraction(a) < Fraction(b) for a, b in zip(values, values[1:]))
        if dom.is_discrete:
            assert all(isinstance(v, int) for v in assignment.values())

    def test_same_block_same_value(self):
        L = ordering([{X, Y}, {Z}])
        assignment = L.instantiate()
        assert assignment[X] == assignment[Y] != assignment[Z]

    def test_unsatisfiable_instantiation_raises(self):
        L = ordering([{Constant(0)}, {X}, {Constant(1)}], Domain.INTEGERS)
        with pytest.raises(UnsatisfiableOrderingError):
            L.instantiate()

    def test_no_constants(self):
        L = ordering([{X}, {Y}])
        assignment = L.instantiate()
        assert Fraction(assignment[X]) < Fraction(assignment[Y])


class TestEnumeration:
    def test_counts_without_constants(self):
        orderings = list(enumerate_complete_orderings([X, Y], Domain.RATIONALS))
        assert len(orderings) == 3  # x<y, y<x, x=y
        orderings = list(enumerate_complete_orderings([X, Y, Z], Domain.RATIONALS))
        assert len(orderings) == 13  # ordered Bell number

    def test_count_helper_matches_enumeration(self):
        assert count_complete_orderings(2) == 3
        assert count_complete_orderings(3) == 13
        assert count_complete_orderings(4) == 75

    def test_constants_stay_ordered(self):
        orderings = list(
            enumerate_complete_orderings([X, Constant(0), Constant(1)], Domain.RATIONALS)
        )
        # x can be: <0, =0, between, =1, >1  -> 5 orderings
        assert len(orderings) == 5
        for L in orderings:
            assert L.compare(Constant(0), Constant(1)) == -1

    def test_discrete_enumeration_filters_impossible(self):
        dense = list(enumerate_complete_orderings([X, Y, Constant(0), Constant(1)], Domain.RATIONALS))
        discrete = list(enumerate_complete_orderings([X, Y, Constant(0), Constant(1)], Domain.INTEGERS))
        assert len(discrete) < len(dense)
        for L in discrete:
            assert L.is_satisfiable()

    def test_all_enumerated_are_distinct(self):
        orderings = list(enumerate_complete_orderings([X, Y, Constant(0)], Domain.RATIONALS))
        assert len({tuple(L.blocks) for L in orderings}) == len(orderings)


class TestExtensionsAndRestriction:
    def test_conservative_extensions_with_new_constant(self):
        L = ordering([{X}, {Constant(2)}])
        extensions = list(L.conservative_extensions(Constant(0)))
        # 0 can merge with x, or sit before x, between x and 2 -> but must stay < 2.
        assert all(Constant(0) in ext.terms() for ext in extensions)
        assert all(ext.restricted_to([X, Constant(2)]).blocks == L.blocks for ext in extensions)
        assert len(extensions) == 3

    def test_conservative_extension_when_constant_present(self):
        L = ordering([{Constant(0)}, {X}])
        assert list(L.conservative_extensions(Constant(0))) == [L]

    def test_conservative_extensions_respect_integer_gaps(self):
        L = ordering([{Constant(-1)}, {X}, {Constant(1)}], Domain.INTEGERS)
        extensions = list(L.conservative_extensions(Constant(0)))
        # The only way to place 0 is to merge it with x (x is pinned to 0).
        assert len(extensions) == 1
        assert extensions[0].canonical_term(X) == Constant(0)

    def test_restricted_to(self):
        L = ordering([{X}, {Y, Constant(1)}, {Z}])
        restricted = L.restricted_to([X, Z])
        assert restricted.blocks == (frozenset({X}), frozenset({Z}))

    def test_from_assignment(self):
        assignment = {X: 3, Y: 1, Z: 3, Constant(1): 1}
        L = CompleteOrdering.from_assignment(assignment, Domain.INTEGERS)
        assert L.compare(Y, X) == -1
        assert L.compare(X, Z) == 0
        assert L.block_index(Constant(1)) == L.block_index(Y)

    def test_from_assignment_rejects_moved_constant(self):
        with pytest.raises(UnsatisfiableOrderingError):
            CompleteOrdering.from_assignment({Constant(1): 2}, Domain.INTEGERS)
