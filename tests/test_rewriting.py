"""Tests for the view-based rewriting subsystem (`repro.rewriting`)."""

from __future__ import annotations

import pytest

from repro import (
    Verdict,
    View,
    ViewCatalog,
    parse_database,
    parse_query,
    rewrite,
    unfold_query,
)
from repro.engine.evaluator import evaluate
from repro.errors import RewritingError
from repro.rewriting import (
    RewritingEngine,
    generate_candidates,
    uses_views,
)
from repro.workloads import build_view_scenario, random_warehouse_database, warehouse_views


@pytest.fixture
def scenario():
    return build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)


@pytest.fixture
def views():
    return warehouse_views()


# ----------------------------------------------------------------------
# Views and materialization
# ----------------------------------------------------------------------
class TestViews:
    def test_shapes(self, views):
        from repro import Variable

        assert views["sales_by_sp"].is_aggregate
        assert views["sales_by_sp"].arity == 3
        assert not views["kept_sales"].is_aggregate
        assert views["kept_sales"].arity == 3
        assert not views["kept_sales"].is_duplicating
        assert views["sold"].is_duplicating
        assert views["sold"].duplicating_variables() == {Variable("a")}

    def test_aggregate_rows_append_value(self):
        view = View("v", parse_query("v(s, sum(a)) :- sales(s, p, a)"))
        database = parse_database("sales(1, 1, 10). sales(1, 2, 5). sales(2, 1, 3).")
        assert view.rows(database) == {(1, 15), (2, 3)}

    def test_materialize_keeps_base_facts(self, views):
        database = parse_database("sales(1, 1, 10). premium_store(1).")
        materialized = views.materialize(database)
        assert materialized.contains("premium_store", (1,))
        assert materialized.contains("sales_by_sp", (1, 1, 10))
        assert materialized.contains("count_by_sp", (1, 1, 1))

    def test_validation(self):
        with pytest.raises(RewritingError):
            View("sales", parse_query("v(s) :- sales(s, p, a)"))  # recursive name
        with pytest.raises(RewritingError):
            View("v", parse_query("v(s, top2(a)) :- sales(s, p, a)"))  # tuple values
        with pytest.raises(RewritingError):
            ViewCatalog(
                [
                    View("v", parse_query("v(s) :- sales(s, p, a)")),
                    View("v", parse_query("v(p) :- sales(s, p, a)")),
                ]
            )

    def test_materialize_rejects_predicate_clash(self):
        views = ViewCatalog([View("v", parse_query("v(s) :- sales(s, p, a)"))])
        with pytest.raises(RewritingError):
            views.materialize(parse_database("v(1). sales(1, 1, 1)."))


# ----------------------------------------------------------------------
# Unfolding: the faithfulness contract
# ----------------------------------------------------------------------
def _assert_faithful(candidate, views, databases):
    """eval(candidate, materialize(D)) == eval(unfold(candidate), D) on every D."""
    unfolded = unfold_query(candidate, views)
    assert not uses_views(unfolded, views)
    for database in databases:
        materialized = views.materialize(database)
        assert evaluate(candidate, materialized) == evaluate(unfolded, database), str(database)
    return unfolded


@pytest.fixture
def random_instances():
    return [random_warehouse_database(seed) for seed in range(12)]


class TestUnfoldFaithfulness:
    def test_sum_over_sum_view(self, views, random_instances):
        candidate = parse_query("rev(s, sum(t)) :- sales_by_sp(s, p, t)")
        _assert_faithful(candidate, views, random_instances)

    def test_sum_over_sum_view_with_residual_join(self, views, random_instances):
        candidate = parse_query(
            "rev(s, sum(t)) :- sales_by_sp(s, p, t), premium_store(s), not discontinued(p)"
        )
        _assert_faithful(candidate, views, random_instances)

    def test_sum_of_counts(self, views, random_instances):
        candidate = parse_query("volume(s, sum(t)) :- count_by_sp(s, p, t)")
        unfolded = _assert_faithful(candidate, views, random_instances)
        assert unfolded.aggregate.function == "count"

    def test_max_over_max_view(self, views, random_instances):
        candidate = parse_query("top(s, max(t)) :- max_by_sp(s, p, t)")
        _assert_faithful(candidate, views, random_instances)

    def test_count_rows_becomes_cntd(self, views, random_instances):
        candidate = parse_query("assortment(s, count()) :- sales_by_sp(s, p, t)")
        unfolded = _assert_faithful(candidate, views, random_instances)
        assert unfolded.aggregate.function == "cntd"

    def test_non_aggregate_over_duplicating_view(self, views, random_instances):
        # Set semantics collapses duplicates anyway, so `sold` is fine here.
        candidate = parse_query("sold_pairs(s, p) :- sold(s, p), not discontinued(p)")
        _assert_faithful(candidate, views, random_instances)

    def test_cntd_over_duplicating_view(self, views, random_instances):
        # Readmitted by the duplicate-tolerance trait: unfolding multiplies
        # assignments but preserves their projection, and cntd only sees the
        # underlying set.
        candidate = parse_query("assortment(s, cntd(p)) :- sold(s, p)")
        unfolded = _assert_faithful(candidate, views, random_instances)
        assert unfolded.aggregate.function == "cntd"

    def test_max_over_duplicating_view(self, random_instances):
        views = ViewCatalog(
            [View("amounts", parse_query("v(s, a) :- sales(s, p, a)"))]
        )
        candidate = parse_query("top(s, max(a)) :- amounts(s, a)")
        _assert_faithful(candidate, views, random_instances)

    def test_min_over_duplicating_view_with_residual(self, random_instances):
        views = ViewCatalog(
            [View("amounts", parse_query("v(s, a) :- sales(s, p, a)"))]
        )
        candidate = parse_query(
            "low(s, min(a)) :- amounts(s, a), premium_store(s)"
        )
        _assert_faithful(candidate, views, random_instances)

    def test_cntd_over_disjunctive_view(self, random_instances):
        # Overlapping disjuncts collapse in the stored union — harmless for a
        # duplicate-insensitive aggregate.
        views = ViewCatalog(
            [View("flagged", parse_query("v(s, p) :- returns(s, p) ; returns(s, p), discontinued(p)"))]
        )
        candidate = parse_query("audit(s, cntd(p)) :- flagged(s, p)")
        _assert_faithful(candidate, views, random_instances)

    def test_disjunctive_view_under_set_semantics(self, random_instances):
        views = ViewCatalog(
            [View("flagged", parse_query("v(s, p) :- returns(s, p) ; sales(s, p, a), discontinued(p)"))]
        )
        candidate = parse_query("audit(s, p) :- flagged(s, p)")
        _assert_faithful(candidate, views, random_instances)

    def test_queries_without_views_unchanged(self, views):
        query = parse_query("q(s, sum(a)) :- sales(s, p, a)")
        assert unfold_query(query, views) is query


class TestUnfoldRejections:
    def test_negated_view_atom(self, views):
        candidate = parse_query("q(s, p) :- returns(s, p), not sold(s, p)")
        with pytest.raises(RewritingError, match="negated view atom"):
            unfold_query(candidate, views)

    def test_count_over_duplicating_view(self, views):
        # The canonical unsoundness: count over `sold` counts distinct
        # (store, product) pairs, not sales rows.  Duplicate-sensitive
        # functions stay rejected by the tolerance trait.
        candidate = parse_query("volume(s, count()) :- sold(s, p)")
        with pytest.raises(RewritingError, match="duplicate-sensitive count"):
            unfold_query(candidate, views)

    def test_sum_over_duplicating_view(self, random_instances):
        views = ViewCatalog(
            [View("amounts", parse_query("v(s, a) :- sales(s, p, a)"))]
        )
        candidate = parse_query("rev(s, sum(a)) :- amounts(s, a)")
        with pytest.raises(RewritingError, match="duplicate-sensitive sum"):
            unfold_query(candidate, views)

    def test_aggregate_over_disjunctive_view(self):
        # Duplicate-free disjuncts, but their union still collapses the
        # per-disjunct labels Γ counts separately — fatal for count.
        views = ViewCatalog(
            [View("flagged", parse_query("v(s, p) :- returns(s, p) ; returns(s, p), discontinued(p)"))]
        )
        candidate = parse_query("audit(s, count()) :- flagged(s, p)")
        with pytest.raises(RewritingError, match="disjunctive view"):
            unfold_query(candidate, views)

    def test_filter_on_partial_aggregate(self, views):
        candidate = parse_query("rev(s, sum(t)) :- sales_by_sp(s, p, t), t > 10")
        with pytest.raises(RewritingError, match="partial aggregate"):
            unfold_query(candidate, views)

    def test_join_on_partial_aggregate(self, views):
        candidate = parse_query("rev(s, sum(t)) :- sales_by_sp(s, p, t), sales(s, p, t)")
        with pytest.raises(RewritingError, match="partial aggregate"):
            unfold_query(candidate, views)

    def test_unsupported_pairing(self, views):
        candidate = parse_query("top(s, max(t)) :- sales_by_sp(s, p, t)")
        with pytest.raises(RewritingError, match="unsupported aggregate pairing"):
            unfold_query(candidate, views)

    def test_non_aggregate_query_reads_aggregate_column(self, views):
        candidate = parse_query("rows(s, p, t) :- sales_by_sp(s, p, t)")
        with pytest.raises(RewritingError, match="aggregate column"):
            unfold_query(candidate, views)

    def test_two_aggregate_views_in_one_disjunct(self, views):
        candidate = parse_query(
            "rev(s, sum(t)) :- sales_by_sp(s, p, t), count_by_sp(s, p, c)"
        )
        with pytest.raises(RewritingError, match="two aggregate views"):
            unfold_query(candidate, views)

    def test_count_rows_with_extra_join_variables(self, views):
        candidate = parse_query(
            "assortment(s, count()) :- sales_by_sp(s, p, t), sales(s, q, a)"
        )
        with pytest.raises(RewritingError, match="no variables of their own"):
            unfold_query(candidate, views)

    def test_arity_mismatch(self, views):
        candidate = parse_query("q(s) :- sold(s)")
        with pytest.raises(RewritingError, match="arity"):
            unfold_query(candidate, views)


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
class TestCandidateGeneration:
    def test_scenario_queries_get_candidates(self, scenario):
        for name, query in scenario.queries.items():
            candidates, _rejected = generate_candidates(query, scenario.views)
            assert candidates, name
            for candidate in candidates:
                assert uses_views(candidate.query, scenario.views)
                assert not uses_views(candidate.unfolded, scenario.views)

    def test_cntd_query_gets_duplicating_view_candidate(self, views):
        # The duplicate-tolerance trait readmits `sold` for cntd: the
        # duplicating projection is no longer a rejection but a candidate.
        query = parse_query("assortment(s, cntd(p)) :- sales(s, p, a)")
        candidates, rejected = generate_candidates(query, views)
        assert any("sold" in c.view_names for c in candidates)
        assert not any(
            r.view_name == "sold" and "duplicating view" in r.reason for r in rejected
        )

    def test_count_query_rejects_duplicating_view(self, views):
        query = parse_query("volume(s, count()) :- sales(s, p, a)")
        _candidates, rejected = generate_candidates(query, views)
        assert any(
            r.view_name == "sold" and "duplicating view" in r.reason for r in rejected
        )

    def test_residual_literals_survive(self, views):
        query = parse_query(
            "rev(s, sum(a)) :- sales(s, p, a), premium_store(s), not discontinued(p)"
        )
        candidates, _ = generate_candidates(query, views)
        via_sum = [c for c in candidates if "sales_by_sp" in c.view_names]
        assert via_sum
        body = via_sum[0].query.disjuncts[0]
        assert any(atom.predicate == "premium_store" for atom in body.positive_atoms)
        assert any(atom.predicate == "discontinued" for atom in body.negated_atoms)


# ----------------------------------------------------------------------
# The engine: verification, ranking, and the property-based differential
# ----------------------------------------------------------------------
class TestRewritingEngine:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_safe_rewritings_match_on_random_instances(self, scenario, workers):
        """Every rewriting the engine emits as SAFE, evaluated over the
        materialized views, matches the original query on randomized
        warehouse instances (the subsystem's end-to-end soundness claim)."""
        engine = RewritingEngine(scenario.views)
        databases = [random_warehouse_database(seed) for seed in range(8)]
        for name, query in scenario.queries.items():
            report = engine.rewrite(query, workers=workers, seed=31)
            assert report.safe, name
            for verified in report.safe:
                assert verified.result.verdict is Verdict.EQUIVALENT
                for database in databases:
                    materialized = scenario.views.materialize(database)
                    assert evaluate(verified.candidate.query, materialized) == evaluate(
                        query, database
                    ), (name, verified.candidate.name)

    def test_unsafe_candidate_gets_witness(self, scenario):
        """A hand-written wrong candidate is refuted with a concrete witness:
        reading total revenue from the returns-filtered view drops rows."""
        engine = RewritingEngine(scenario.views)
        query = parse_query("rev(s, sum(a)) :- sales(s, p, a)")
        candidate = engine.make_candidate(
            query, parse_query("rev(s, sum(a)) :- kept_sales(s, p, a)")
        )
        (verified,) = engine.verify(query, [candidate], seed=5)
        assert verified.result.verdict is Verdict.NOT_EQUIVALENT
        assert verified.result.counterexample is not None
        witness = verified.result.counterexample.database
        assert witness is not None
        assert evaluate(query, witness) != evaluate(candidate.unfolded, witness)

    def test_ranking_prefers_cheaper_view(self, scenario):
        report = rewrite(
            scenario.queries["total_revenue"],
            scenario.views,
            database=scenario.database,
            seed=3,
        )
        assert report.best is not None
        costs = [verified.estimated_cost for verified in report.safe]
        assert costs == sorted(costs)
        assert report.best.estimated_cost <= report.direct_cost

    def test_rejects_query_already_over_views(self, scenario):
        engine = RewritingEngine(scenario.views)
        with pytest.raises(RewritingError, match="view predicate"):
            engine.rewrite(parse_query("q(s, sum(t)) :- sales_by_sp(s, p, t)"))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_disjunctive_rewritings_use_the_sweep_path(self, workers):
        """Union-view candidates land on the bounded local-equivalence path
        (not quasilinear), exercising the plan_catalog_sweep batching."""
        views = ViewCatalog(
            [
                View(
                    "activity",
                    parse_query(
                        "v(s, p) :- returns(s, p), premium_store(s) ; "
                        "returns(s, p), discontinued(p)"
                    ),
                ),
                View(
                    "activity2",
                    parse_query(
                        "v(p, s) :- returns(s, p), discontinued(p) ; "
                        "premium_store(s), returns(s, p)"
                    ),
                ),
            ]
        )
        query = parse_query(
            "audit(s, p) :- returns(s, p), premium_store(s) ; "
            "returns(s, p), discontinued(p)"
        )
        report = rewrite(query, views, workers=workers, seed=17)
        assert len(report.safe) == 2
        for verified in report.safe:
            assert verified.result.method == "local-equivalence (set semantics)"
        databases = [random_warehouse_database(seed) for seed in range(6)]
        for database in databases:
            materialized = views.materialize(database)
            for verified in report.safe:
                assert evaluate(verified.candidate.query, materialized) == evaluate(
                    query, database
                )

    def test_budget_blown_candidate_degrades_to_unverified(self):
        views = ViewCatalog(
            [View("w", parse_query("v(x, y, z, u) :- wide(x, y, z, u)"))]
        )
        engine = RewritingEngine(views, max_subsets=64)
        query = parse_query("q(count()) :- wide(x, y, z, u) ; wide(u, z, y, x)")
        candidate = engine.make_candidate(
            query, parse_query("q(count()) :- w(x, y, z, u) ; w(u, z, y, x)")
        )
        (verified,) = engine.verify(query, [candidate])
        assert verified.result.verdict is Verdict.UNKNOWN
        assert "budget" in verified.result.method

    def test_views_accepts_mapping_and_iterable(self):
        definition = parse_query("v(s, p, sum(a)) :- sales(s, p, a)")
        query = parse_query("rev(s, sum(a)) :- sales(s, p, a)")
        from_mapping = rewrite(query, {"v_sp": definition}, seed=1)
        from_list = rewrite(query, [View("v_sp", definition)], seed=1)
        assert [v.candidate.query for v in from_mapping.safe] == [
            v.candidate.query for v in from_list.safe
        ]


class TestCostModel:
    def test_distinct_count_estimate_splits_naive_ties(self):
        """Residual joins of equal naive size rank by join-column selectivity
        under the distinct-count estimator."""
        from repro import Database
        from repro.rewriting import estimated_cost, naive_estimated_cost

        facts = [("fact", (i % 10, i)) for i in range(20)]  # join col: 10 distinct
        facts += [("selective", (i, i % 2)) for i in range(10)]  # col 0: 10 distinct
        facts += [("skewed", (i % 2, i)) for i in range(10)]  # col 0: 2 distinct
        database = Database(facts)
        via_selective = parse_query("q(x, sum(y)) :- fact(x, y), selective(x, z)")
        via_skewed = parse_query("q(x, sum(y)) :- fact(x, y), skewed(x, z)")
        assert naive_estimated_cost(via_selective, database) == naive_estimated_cost(
            via_skewed, database
        )
        assert estimated_cost(via_selective, database) < estimated_cost(
            via_skewed, database
        )

    def test_view_probe_still_beats_fact_scan(self, scenario):
        """The new estimator preserves the PR 4 headline ordering: the best
        safe rewriting reads the pre-aggregated extent below the direct
        fact-table cost."""
        report = rewrite(
            scenario.queries["total_revenue"],
            scenario.views,
            database=scenario.database,
            seed=3,
        )
        assert report.best is not None
        assert report.best.estimated_cost <= report.direct_cost


class TestReviewRegressions:
    """Pins for issues found in review."""

    def test_unfold_rejects_partial_aggregate_in_head(self, views):
        # Must raise the documented RewritingError, not MalformedQueryError.
        candidate = parse_query("rows(s, t, count()) :- sales_by_sp(s, p, t)")
        with pytest.raises(RewritingError, match="partial-aggregate column"):
            unfold_query(candidate, views)

    def test_verify_plans_only_the_target_row(self, scenario):
        """plan_catalog_sweep restricted to given pairs plans nothing else."""
        from repro.workloads import plan_catalog_sweep

        catalog = {name: query for name, query in scenario.queries.items()}
        wanted = [("assortment", "total_revenue"), ("sales_count", "total_revenue")]
        plan = plan_catalog_sweep(catalog, pairs=wanted)
        planned = set(plan.pair_path) | {
            pair for group in plan.groups for pair in group.pairs
        }
        assert planned == set(wanted)
        with pytest.raises(Exception, match="unknown query"):
            plan_catalog_sweep(catalog, pairs=[("total_revenue", "nope")])
