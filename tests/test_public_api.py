"""Tests for the public API surface and the error hierarchy."""

import pytest

import repro
from repro.errors import (
    DomainError,
    EvaluationError,
    MalformedQueryError,
    QuerySyntaxError,
    ReproError,
    UndecidableError,
    UnsafeQueryError,
    UnsatisfiableOrderingError,
    UnsupportedAggregateError,
)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.aggregates as aggregates
        import repro.core as core
        import repro.datalog as datalog
        import repro.engine as engine
        import repro.orderings as orderings
        import repro.parallel as parallel
        import repro.rewriting as rewriting
        import repro.session as session
        import repro.sql as sql
        import repro.workloads as workloads

        for module in (
            aggregates,
            core,
            datalog,
            engine,
            orderings,
            parallel,
            rewriting,
            session,
            sql,
            workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_top_level_convenience_functions(self):
        query = repro.parse_query("q(x, sum(y)) :- p(x, y)")
        database = repro.parse_database("p(1, 2).")
        assert repro.evaluate(query, database) == {(1,): 2}
        assert repro.are_equivalent(query, query).is_equivalent


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            DomainError,
            EvaluationError,
            MalformedQueryError,
            QuerySyntaxError,
            UndecidableError,
            UnsafeQueryError,
            UnsatisfiableOrderingError,
            UnsupportedAggregateError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)

    def test_syntax_error_message_includes_position(self):
        error = QuerySyntaxError("bad token", text="q(x) :-", position=5)
        assert "position 5" in str(error)

    def test_catching_the_base_class_is_sufficient(self):
        with pytest.raises(ReproError):
            repro.parse_query("q(x :- p(x)")
        with pytest.raises(ReproError):
            repro.get_function("median")
        with pytest.raises(ReproError):
            repro.parse_query("q(x) :- p(y)")


class TestDocstrings:
    def test_public_modules_have_docstrings(self):
        import repro.aggregates.functions
        import repro.core.bounded
        import repro.core.equivalence
        import repro.datalog.queries
        import repro.engine.symbolic
        import repro.orderings.complete_orderings

        for module in (
            repro,
            repro.aggregates.functions,
            repro.core.bounded,
            repro.core.equivalence,
            repro.datalog.queries,
            repro.engine.symbolic,
            repro.orderings.complete_orderings,
        ):
            assert module.__doc__ and module.__doc__.strip()

    def test_key_entry_points_have_docstrings(self):
        from repro.core import are_equivalent, bounded_equivalence, local_equivalence
        from repro.core.quasilinear import quasilinear_equivalent

        for function in (are_equivalent, bounded_equivalence, local_equivalence, quasilinear_equivalent):
            assert function.__doc__ and function.__doc__.strip()
