"""Tests for the join planner and the plan-driven evaluation engine."""

import pytest

from repro import parse_database, parse_query
from repro.datalog.atoms import Comparison, ComparisonOp, RelationalAtom
from repro.datalog.conditions import Condition
from repro.datalog.database import Database
from repro.datalog.queries import conjunctive_query
from repro.datalog.terms import Constant, Variable
from repro.engine import (
    AtomStep,
    BindStep,
    CompareStep,
    NegationStep,
    evaluate_set,
    naive_satisfying_assignments,
    plan_condition,
    satisfying_assignments,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def _plan(condition, sizes):
    return plan_condition(condition, lambda predicate: sizes.get(predicate, 0))


class TestPlanShape:
    def test_smaller_relation_breaks_ties(self):
        condition = parse_query("q(x, y) :- p(x, z), r(z, y)").disjuncts[0]
        plan = _plan(condition, {"p": 1000, "r": 3})
        atoms = [step for step in plan.steps if isinstance(step, AtomStep)]
        assert atoms[0].atom.predicate == "r"
        # The second atom joins on the now-bound z (its first column).
        assert atoms[1].atom.predicate == "p"
        assert atoms[1].bound_columns == (1,)

    def test_bound_coverage_beats_relation_size(self):
        # s(x) binds x; p(x, y) then has one bound column and is picked before
        # the smaller but completely unbound r(z, w).
        condition = parse_query("q(x, y, z, w) :- s(x), p(x, y), r(z, w)").disjuncts[0]
        plan = _plan(condition, {"s": 5, "p": 1000, "r": 10})
        order = [step.atom.predicate for step in plan.steps if isinstance(step, AtomStep)]
        assert order == ["s", "p", "r"]

    def test_comparison_pushed_to_earliest_point(self):
        condition = parse_query("q(x, y) :- p(x, z), r(z, y), z > 0").disjuncts[0]
        plan = _plan(condition, {"p": 1, "r": 1})
        kinds = [type(step) for step in plan.steps]
        # z is bound after the first atom, so the filter runs before the join.
        assert kinds.index(CompareStep) < kinds.index(AtomStep, 1)

    def test_negation_pushed_to_earliest_point(self):
        condition = parse_query("q(x, y) :- p(x, z), not s(z), r(z, y)").disjuncts[0]
        plan = _plan(condition, {"p": 1, "r": 1, "s": 1})
        kinds = [type(step) for step in plan.steps]
        assert kinds.index(NegationStep) < kinds.index(AtomStep, 1)

    def test_equality_chain_becomes_bind_steps(self):
        condition = parse_query("q(x, y, z) :- p(x), y = x, z = y").disjuncts[0]
        plan = _plan(condition, {"p": 1})
        binds = [step for step in plan.steps if isinstance(step, BindStep)]
        assert [step.variable for step in binds] == [y, z]
        assert plan.resolvable

    def test_constant_columns_count_as_bound(self):
        condition = parse_query("q(y) :- p(1, y)").disjuncts[0]
        plan = _plan(condition, {"p": 10})
        (atom_step,) = [step for step in plan.steps if isinstance(step, AtomStep)]
        assert atom_step.bound_columns == (0,)

    def test_unsafe_condition_is_unresolvable(self):
        # Constructed directly (make_condition would reject it): y is never
        # bound, so the plan must be flagged and execution must yield nothing.
        condition = Condition((RelationalAtom("p", (x,)), Comparison(y, ComparisonOp.LT, x)))
        plan = _plan(condition, {"p": 1})
        assert not plan.resolvable
        query = conjunctive_query("q", (x,), [RelationalAtom("p", (x,))])
        database = parse_database("p(1).")
        from repro.engine import execute_plan

        assert list(execute_plan(plan, database)) == []


class TestJoinSelectivity:
    """Distinct-count statistics (ISSUE 6 satellite): among equally-bound
    atoms the planner must prefer the smallest *estimated* probe result
    (``rows / distinct`` of the most selective bound column), not the
    smallest relation."""

    CONDITION = parse_query("q(x, y, z) :- s(x), a(x, y), b(x, z)").disjuncts[0]

    def _order(self, sizes, distincts):
        plan = plan_condition(
            self.CONDITION,
            lambda predicate: sizes[predicate],
            lambda predicate, column: distincts[predicate][column],
        )
        return [step.atom.predicate for step in plan.steps if isinstance(step, AtomStep)]

    def test_distinct_counts_break_equal_size_ties(self):
        # Both joins probe on the bound x; a's first column is near-unique
        # (est. 1 row per probe) while b's has two values (est. 500 rows).
        sizes = {"s": 5, "a": 1000, "b": 1000}
        selective_a = {"s": (5,), "a": (1000, 10), "b": (2, 10)}
        assert self._order(sizes, selective_a) == ["s", "a", "b"]
        # Swapping the statistics must flip the join order.
        selective_b = {"s": (5,), "a": (2, 10), "b": (1000, 10)}
        assert self._order(sizes, selective_b) == ["s", "b", "a"]

    def test_selectivity_overrides_raw_size(self):
        # b is 20x smaller, but every probe on it returns ~100 rows while a
        # returns ~1 — the estimated result decides, not the relation size.
        sizes = {"s": 5, "a": 2000, "b": 100}
        distincts = {"s": (5,), "a": (2000, 3), "b": (1, 3)}
        assert self._order(sizes, distincts) == ["s", "a", "b"]
        # Without statistics the raw-size fallback picks the small relation,
        # preserving the pre-statistics ordering.
        assert self._order_without_stats(sizes) == ["s", "b", "a"]

    def _order_without_stats(self, sizes):
        plan = plan_condition(self.CONDITION, lambda predicate: sizes[predicate])
        return [step.atom.predicate for step in plan.steps if isinstance(step, AtomStep)]


class TestEngineCorners:
    """Pins the corners the removed ``_check_residual_literals`` pass claimed
    to guard: empty relations and 0-ary atoms."""

    def test_empty_relation_yields_no_assignments(self):
        query = parse_query("q(x) :- missing(x)")
        database = parse_database("p(1).")
        assert satisfying_assignments(query, database) == []
        assert naive_satisfying_assignments(query, database) == []

    def test_empty_relation_with_all_variables_bound_elsewhere(self):
        # Both variables of r(x, y) are bound by p; r is empty, so the join
        # over r must empty the result without any residual re-verification.
        query = parse_query("q(x, y) :- p(x, y), r(x, y)")
        database = parse_database("p(1, 2). p(3, 4).")
        assert evaluate_set(query, database) == set()
        assert naive_satisfying_assignments(query, database) == []

    def test_zero_ary_atom_present(self):
        query = parse_query("q(x) :- p(x), flag()")
        database = parse_database("p(1). p(2). flag().")
        assert evaluate_set(query, database) == {(1,), (2,)}

    def test_zero_ary_atom_absent(self):
        query = parse_query("q(x) :- p(x), flag()")
        database = parse_database("p(1). p(2).")
        assert evaluate_set(query, database) == set()
        assert naive_satisfying_assignments(query, database) == []

    def test_negated_zero_ary_atom(self):
        query = parse_query("q(x) :- p(x), not flag()")
        with_flag = parse_database("p(1). flag().")
        without_flag = parse_database("p(1).")
        assert evaluate_set(query, with_flag) == set()
        assert evaluate_set(query, without_flag) == {(1,)}

    def test_index_probe_with_repeated_variable(self):
        # The probed row still has to satisfy the repeated-variable constraint
        # on the unbound columns.
        query = parse_query("q(x, y) :- p(x, y), r(y, y)")
        database = parse_database("p(1, 2). p(1, 3). r(2, 2). r(3, 4).")
        assert evaluate_set(query, database) == {(1, 2)}


class TestDatabaseIndex:
    def test_index_groups_rows_by_projection(self):
        database = Database([("p", (1, 2)), ("p", (1, 3)), ("p", (2, 5))])
        index = database.index("p", (0,))
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert index[(2,)] == ((2, 5),)
        assert (7,) not in index

    def test_index_on_missing_predicate_is_empty(self):
        assert Database([]).index("p", (0,)) == {}

    def test_index_is_cached(self):
        database = Database([("p", (1, 2))])
        assert database.index("p", (1,)) is database.index("p", (1,))
