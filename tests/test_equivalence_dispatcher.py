"""Tests for the top-level equivalence checker and Table 2."""

import pytest

from repro import Domain, parse_query
from repro.core import (
    PAPER_TABLE2,
    Verdict,
    are_equivalent,
    build_table2,
    decide_or_raise,
    format_table2,
    table2_matches_paper,
)
from repro.errors import UndecidableError, UnsupportedAggregateError


class TestDispatcher:
    def test_quasilinear_fast_path_selected(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, sum(z)) :- p(x, z), not r(z)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "quasilinear" in result.method
        assert result.quasilinear is not None

    def test_general_procedure_for_disjunctive_queries(self):
        first = parse_query("q(max(y)) :- p(y) ; p(y), r(y)")
        second = parse_query("q(max(y)) :- p(y)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "local-equivalence" in result.method
        assert result.report is not None

    def test_non_equivalent_with_counterexample(self):
        first = parse_query("q(count()) :- p(y)")
        second = parse_query("q(count()) :- p(y), not r(y)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.counterexample is not None

    def test_non_aggregate_queries_use_set_semantics(self):
        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "set semantics" in result.method

    def test_different_aggregation_functions(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, max(y)) :- p(x, y)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        # A claim of non-equivalence must come with a concrete witness, not a
        # syntactic shortcut: differing function names alone prove nothing.
        assert "counterexample" in result.method
        assert result.counterexample is not None
        assert result.counterexample.database is not None

    def test_pinned_sum_vs_count_settled_by_normalization(self):
        # sum of values pinned to 1 is a count: the queries agree on every
        # database, so no witness exists and the only sound verdicts are
        # EQUIVALENT or UNKNOWN.  The pre-dispatch normalization rewrites the
        # sum query to a count query and settles the pair syntactically.
        first = parse_query("q(s, sum(a)) :- r(s, a), a = 1")
        second = parse_query("q(s, count()) :- r(s, a), a = 1")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "normalization" in result.method

    def test_different_functions_agreeing_everywhere_report_unknown_unnormalized(self):
        # Without the normalization pass the pair stays in the open fragment:
        # no witness exists, so the dispatcher must fall back to UNKNOWN (the
        # PR 1 behaviour, kept reachable for ablation).
        first = parse_query("q(s, sum(a)) :- r(s, a), a = 1")
        second = parse_query("q(s, count()) :- r(s, a), a = 1")
        result = are_equivalent(first, second, normalize=False)
        assert result.verdict is Verdict.UNKNOWN
        assert result.counterexample is None

    def test_counterexample_trials_threaded_through_quasilinear_branch(self, monkeypatch):
        import repro.core.equivalence as equivalence_module

        captured = {}
        original = equivalence_module.find_counterexample

        def spy(first, second, **kwargs):
            captured["trials"] = kwargs.get("trials")
            return original(first, second, **kwargs)

        monkeypatch.setattr(equivalence_module, "find_counterexample", spy)
        # A non-equivalent quasilinear pair: the dispatcher searches for a
        # witness and must honour the caller's trial budget.
        first = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, sum(y)) :- p(x, y), y > 1")
        result = are_equivalent(first, second, counterexample_trials=7)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert captured["trials"] == 7

    def test_aggregate_vs_non_aggregate_rejected(self):
        with pytest.raises(UnsupportedAggregateError):
            are_equivalent(parse_query("q(x, sum(y)) :- p(x, y)"), parse_query("q(x) :- p(x, y)"))

    def test_avg_non_quasilinear_distinguishable(self):
        first = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), y > 0")
        second = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), y < 0")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.method == "counterexample search"

    def test_avg_doubling_disjunct_is_undetectable_hence_unknown(self):
        # Doubling every assignment does not change an average, so no
        # counterexample exists; the class is open, so the checker says UNKNOWN.
        first = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), r(x)")
        second = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), s(x)")
        result = are_equivalent(first, second, counterexample_trials=100)
        assert result.verdict is Verdict.UNKNOWN

    def test_avg_non_quasilinear_unknown_when_no_witness(self):
        first = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y)")
        second = parse_query("q(x, avg(y)) :- p(x, y) ; p(x, y), p(x, z)")
        result = are_equivalent(first, second, counterexample_trials=60)
        assert result.verdict in (Verdict.UNKNOWN, Verdict.NOT_EQUIVALENT)

    def test_unknown_with_bounded_check(self):
        first = parse_query("q(avg(y)) :- p(y) ; p(y)")
        second = parse_query("q(avg(y)) :- p(y) ; p(y), p(y)")
        result = are_equivalent(first, second, counterexample_trials=30, unknown_bound=1)
        assert result.verdict in (Verdict.UNKNOWN, Verdict.NOT_EQUIVALENT)
        if result.verdict is Verdict.UNKNOWN:
            assert "1-equivalent" in result.details

    def test_prod_over_rationals_is_decided(self):
        # The second disjunct is unsatisfiable, so the queries are equivalent;
        # prod over Q is decided via Theorem 6.6.
        first = parse_query("q(prod(y)) :- p(y) ; p(y), y > 0, y < 0")
        second = parse_query("q(prod(y)) :- p(y)")
        result = are_equivalent(first, second, domain=Domain.RATIONALS)
        assert result.verdict is Verdict.EQUIVALENT
        assert "local-equivalence" in result.method

    def test_prod_doubling_is_not_equivalent(self):
        first = parse_query("q(prod(y)) :- p(y) ; p(y), r(y)")
        second = parse_query("q(prod(y)) :- p(y)")
        result = are_equivalent(first, second, domain=Domain.RATIONALS)
        assert result.verdict is Verdict.NOT_EQUIVALENT

    def test_prod_over_integers_falls_back(self):
        first = parse_query("q(prod(y)) :- p(y) ; p(y), y > 0, y < 0")
        second = parse_query("q(prod(y)) :- p(y)")
        result = are_equivalent(first, second, domain=Domain.INTEGERS, counterexample_trials=50)
        assert result.verdict is Verdict.UNKNOWN

    def test_decide_or_raise(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        assert decide_or_raise(first, first)
        unknown_first = parse_query("q(avg(y)) :- p(y) ; p(y)")
        unknown_second = parse_query("q(avg(y)) :- p(y) ; p(y), p(y)")
        with pytest.raises(UndecidableError):
            decide_or_raise(unknown_first, unknown_second)

    def test_prefer_quasilinear_can_be_disabled(self):
        first = parse_query("q(max(y)) :- p(y), not r(y)")
        result = are_equivalent(first, first, prefer_quasilinear=False)
        assert result.verdict is Verdict.EQUIVALENT
        assert "local-equivalence" in result.method

    def test_result_dunder_bool_and_str(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        result = are_equivalent(first, first)
        assert bool(result)
        assert "equivalent" in str(result)


class TestKnownEquivalencesFromThePaper:
    def test_max_ignores_multiplicity_sum_does_not(self):
        base = "q(x, {f}(y)) :- p(x, y)"
        doubled = "q(x, {f}(y)) :- p(x, y) ; p(x, y)"
        # Idempotent functions ignore the duplicated disjunct; group functions
        # (count, sum) and parity see every assignment twice and differ.
        for function, expected in (("max", True), ("top2", True), ("sum", False), ("count", False), ("parity", False)):
            first = parse_query(base.format(f=function) if function not in ("count", "parity") else f"q(x, {function}()) :- p(x, y)")
            second = parse_query(
                doubled.format(f=function)
                if function not in ("count", "parity")
                else f"q(x, {function}()) :- p(x, y) ; p(x, y)"
            )
            result = are_equivalent(first, second)
            assert (result.verdict is Verdict.EQUIVALENT) == expected, function

    def test_bag_set_corollary_via_count(self):
        # Two non-aggregate queries equivalent under bag-set semantics iff their
        # count-queries are equivalent (Section 8).
        from repro.core import as_count_query, bag_set_equivalent

        first = parse_query("q(x) :- p(x, y), not r(y)")
        second = parse_query("q(x) :- p(x, z), not r(z)")
        count_result = are_equivalent(as_count_query(first), as_count_query(second))
        assert bag_set_equivalent(first, second).equivalent == count_result.is_equivalent


class TestTable2:
    def test_generated_table_matches_paper(self):
        assert table2_matches_paper(build_table2(Domain.RATIONALS))

    def test_all_functions_present(self):
        rows = {row.function for row in build_table2()}
        assert rows == set(PAPER_TABLE2)

    def test_bounded_equivalence_decidable_everywhere(self):
        assert all(row.bounded_equivalence for row in build_table2())

    def test_open_cells(self):
        rows = {row.function: row for row in build_table2()}
        assert rows["avg"].equivalence == "open"
        assert rows["cntd"].equivalence == "open"
        assert rows["cntd"].quasilinear == "special cases"

    def test_format_table2(self):
        rendered = format_table2(build_table2())
        assert "cntd" in rendered and "special cases" in rendered

    def test_mismatch_detected(self):
        rows = build_table2()
        rows[0].equivalence = "open"
        assert not table2_matches_paper(rows)
