"""Tests for the workload generators and the warehouse scenario."""

import pytest

from repro import Verdict, are_equivalent, evaluate
from repro.domains import Domain
from repro.workloads import (
    QueryGenerator,
    QueryProfile,
    WAREHOUSE_SCHEMA,
    build_warehouse,
    linear_chain_query,
    renamed_copy,
)


class TestQueryGenerator:
    def test_generated_queries_are_well_formed(self):
        generator = QueryGenerator(seed=1)
        for _ in range(25):
            query = generator.query()
            assert query.is_aggregate
            assert all(disjunct.is_safe() for disjunct in query.disjuncts)

    def test_quasilinear_profile(self):
        generator = QueryGenerator(
            QueryProfile(aggregation_function="max", quasilinear_only=True), seed=2
        )
        for _ in range(25):
            assert generator.query().is_quasilinear

    def test_nullary_aggregation_functions(self):
        generator = QueryGenerator(QueryProfile(aggregation_function="count"), seed=3)
        query = generator.query()
        assert query.aggregate is not None and query.aggregate.arguments == ()

    def test_non_aggregate_profile(self):
        generator = QueryGenerator(QueryProfile(aggregation_function=None), seed=4)
        assert not generator.query().is_aggregate

    def test_determinism(self):
        first = QueryGenerator(seed=7).query()
        second = QueryGenerator(seed=7).query()
        assert str(first) == str(second)

    def test_generated_databases_evaluate(self):
        generator = QueryGenerator(seed=5)
        for _ in range(10):
            query = generator.query()
            database = generator.database()
            evaluate(query, database)

    def test_database_respects_domain(self):
        generator = QueryGenerator(seed=6)
        database = generator.database(domain=Domain.INTEGERS, values=[0, 1, 2])
        database.check_domain(Domain.INTEGERS)

    def test_query_pair_sometimes_renames(self):
        generator = QueryGenerator(seed=8)
        renamed_seen = False
        for _ in range(20):
            first, second = generator.query_pair()
            if first.predicates() == second.predicates() and len(str(first)) == len(str(second)):
                renamed_seen = True
        assert renamed_seen


class TestLinearChain:
    def test_chain_structure(self):
        query = linear_chain_query(5, function="sum")
        assert query.is_linear
        assert len(query.disjuncts[0].positive_atoms) == 5
        assert query.term_size == 7  # 6 variables + constant 0

    def test_chain_requires_positive_length(self):
        with pytest.raises(ValueError):
            linear_chain_query(0)

    def test_nullary_chain(self):
        query = linear_chain_query(3, function="count")
        assert query.aggregate is not None and query.aggregate.arguments == ()

    def test_renamed_copy_is_equivalent(self):
        query = linear_chain_query(3, function="max")
        copy = renamed_copy(query)
        assert str(copy) != str(query)
        assert are_equivalent(query, copy).verdict is Verdict.EQUIVALENT


class TestWarehouse:
    def test_schema_and_size(self, warehouse):
        assert set(warehouse.database.predicates()) <= set(WAREHOUSE_SCHEMA)
        assert warehouse.fact_count > 10

    def test_deterministic_construction(self):
        assert build_warehouse(seed=3).database == build_warehouse(seed=3).database

    def test_queries_evaluate(self, warehouse):
        for name, query in warehouse.queries.items():
            result = evaluate(query, warehouse.database)
            assert isinstance(result, dict), name

    def test_revenue_reorderings_are_equivalent(self, warehouse):
        result = are_equivalent(
            warehouse.queries["revenue_per_store"], warehouse.queries["revenue_per_store_alt"]
        )
        assert result.verdict is Verdict.EQUIVALENT

    def test_dropping_a_negation_is_not_equivalent(self, warehouse):
        result = are_equivalent(
            warehouse.queries["revenue_per_store"], warehouse.queries["revenue_keep_returns"]
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT

    def test_revenue_values_differ_on_the_instance(self):
        warehouse = build_warehouse(stores=4, products=6, sales_per_store=10, seed=2)
        full = evaluate(warehouse.queries["revenue_per_store"], warehouse.database)
        keep = evaluate(warehouse.queries["revenue_keep_returns"], warehouse.database)
        assert full != keep
