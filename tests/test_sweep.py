"""Tests for the single-sweep catalog engine and the widened normalization.

Covers the constant-propagation fixes in the dispatcher (equality-chain pins,
the ``sum ≡ c·count`` generalization, and the documented negative cases), the
sweep planner's partition of matrix cells, the group-comparison kernels, and
a differential suite pinning ``equivalence_matrix(sweep=True)`` against the
PR 2 pairwise path — verdicts, methods, and witnesses cell for cell — on
every scenario catalog, serial and with ``workers=2``.
"""

import warnings

import pytest

from repro import Verdict, parse_query
from repro.core import are_equivalent, normalize_for_dispatch
from repro.core.bounded import SharedBaseContext, sweep_equivalence
from repro.core.equivalence import (
    aggregation_pin,
    pair_count_reduction,
    sum_count_reduction,
)
from repro.datalog.terms import Constant
from repro.engine import clear_symbolic_caches
from repro.engine.symbolic import SymbolicDatabase, compare_symbolic_groups, symbolic_group_index
from repro.errors import ReproError, SearchSpaceBudgetError
from repro.parallel.executor import default_workers
from repro.workloads import build_warehouse, equivalence_matrix
from repro.workloads.batch import plan_catalog_sweep


# ----------------------------------------------------------------------
# Normalization: equality-chain pins and sum ≡ c·count
# ----------------------------------------------------------------------
class TestEqualityChainPin:
    def test_chain_pin_flips_sum_count_pair_to_equivalent(self):
        # The ISSUE 3 acceptance case: a pin through y = z, z = 1 used to
        # leave the pair UNKNOWN (the syntactic check saw no direct y = 1).
        first = parse_query("q(s, sum(u)) :- p(s, a), u = z, z = 1")
        second = parse_query("q(s, count()) :- p(s, a)")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "normalization" in result.method
        unnormalized = are_equivalent(first, second, normalize=False)
        assert unnormalized.verdict is Verdict.UNKNOWN

    def test_longer_chains_propagate(self):
        query = parse_query("q(s, sum(u)) :- p(s, a), u = z, z = w, w = 1")
        assert aggregation_pin(query) == Constant(1)
        rewritten, note = normalize_for_dispatch(query)
        assert note is not None and rewritten.aggregate.function == "count"

    def test_chain_through_a_constant_hop(self):
        # u = 1 and 1 = w put u and w in one class; the single constant 1
        # still pins u.
        query = parse_query("q(s, sum(u)) :- p(s, a), w = 1, u = w")
        assert aggregation_pin(query) == Constant(1)

    def test_pin_must_hold_in_every_disjunct(self):
        query = parse_query("q(s, sum(u)) :- p(s, u), u = z, z = 1 ; p(s, u)")
        assert aggregation_pin(query) is None
        _, note = normalize_for_dispatch(query)
        assert note is None

    def test_order_comparisons_are_not_chased(self):
        # u >= 1, u <= 1 pins semantically but not through equality atoms;
        # the propagation deliberately stays syntactic over ``=`` chains.
        query = parse_query("q(s, sum(u)) :- r(s, u), u >= 1, u <= 1")
        assert aggregation_pin(query) is None

    def test_conflicting_constants_bail(self):
        # u = 1, u = 2 makes the disjunct unsatisfiable; the rewriting stays
        # out of that corner instead of picking one of the constants.
        query = parse_query("q(s, sum(u)) :- p(s, a), u = 1, u = 2")
        assert aggregation_pin(query) is None


class TestCCountGeneralization:
    def test_same_multiplier_pair_decides_equivalent(self):
        first = parse_query("q(s, sum(u)) :- r(s, a), u = 2")
        second = parse_query("q(s, sum(v)) :- r(s, a), v = w, w = 2")
        result = are_equivalent(first, second)
        assert result.verdict is Verdict.EQUIVALENT
        assert "sum→2·count normalization" in result.method

    def test_not_equivalent_witness_reports_original_values(self):
        first = parse_query("q(s, sum(u)) :- r(s, a), u = 2")
        second = parse_query("q(s, sum(v)) :- r(s, a), not t(s), v = 2")
        result = are_equivalent(first, second, seed=3)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert "sum→2·count normalization" in result.method
        witness = result.counterexample
        assert witness is not None and witness.database is not None
        from repro.engine import evaluate

        assert witness.left_result == evaluate(first, witness.database)
        assert witness.right_result == evaluate(second, witness.database)
        assert witness.left_result != witness.right_result

    def test_mixed_multipliers_stay_unrewritten(self):
        # sum pinned to 2 against a plain count: 2·count1 ≡ count2 does not
        # reduce to count1 ≡ count2, so no verdict would transfer.
        first = parse_query("q(s, sum(u)) :- r(s, a), u = 2")
        second = parse_query("q(s, count()) :- r(s, a), not t(s)")
        assert pair_count_reduction(first, second) is None
        result = are_equivalent(first, second, counterexample_trials=60)
        assert "normalization" not in result.method

    def test_zero_pin_is_excluded(self):
        # A sum pinned to 0 returns 0 for every group: equivalence
        # degenerates to group-key agreement, strictly weaker than count
        # equivalence, so the rewrite would not be verdict-preserving.
        query = parse_query("q(s, sum(u)) :- r(s, a), u = 0")
        assert aggregation_pin(query) is None
        assert sum_count_reduction(query) is None

    def test_disjuncts_with_different_constants_bail(self):
        query = parse_query("q(s, sum(u)) :- r(s, a), u = 2 ; r(s, a), u = 3")
        assert aggregation_pin(query) is None

    def test_public_normalize_only_rewrites_multiplier_one(self):
        query = parse_query("q(s, sum(u)) :- r(s, a), u = z, z = 2")
        rewritten, note = normalize_for_dispatch(query)
        assert rewritten is query and note is None
        reduction = sum_count_reduction(query)
        assert reduction is not None
        _, multiplier, reduction_note = reduction
        assert multiplier == Constant(2) and "2·count" in reduction_note


# ----------------------------------------------------------------------
# Sweep planner
# ----------------------------------------------------------------------
def _audit_catalog():
    return {
        "audit_a": parse_query(
            "audit(s, count()) :- returns(s, p), premium_store(s) ; "
            "returns(s, p), discontinued(p)"
        ),
        "audit_b": parse_query(
            "audit(s, count()) :- premium_store(s), returns(s, p) ; "
            "returns(s, p), discontinued(p)"
        ),
        "audit_c": parse_query(
            "audit(x, count()) :- returns(x, y), premium_store(x) ; "
            "returns(x, y), discontinued(y)"
        ),
        "audit_dup": parse_query(
            "audit(s, count()) :- returns(s, p), premium_store(s) ; "
            "returns(s, p), premium_store(s) ; returns(s, p), discontinued(p)"
        ),
        "audit_keep": parse_query(
            "audit(s, count()) :- returns(s, p), premium_store(s) ; returns(s, p)"
        ),
    }


def _mixed_catalog():
    # The disjunctive unit queries keep their variable count low (τ = 3):
    # their count forms retain the pin comparisons, which disables the
    # shared-Γ caches and makes every ordering its own class — the τ = 4
    # variant costs seconds per cell for no extra coverage (the chain pin is
    # exercised by the quasilinear cells of the analyst catalog and the unit
    # tests above).
    catalog = _audit_catalog()
    catalog.update(
        {
            "unit_sum": parse_query(
                "u(sum(w)) :- premium_store(s), w = 1 ; discontinued(s), w = 1"
            ),
            "unit_sum2": parse_query(
                "u(sum(w)) :- premium_store(s), 1 = w ; discontinued(s), w = 1"
            ),
            "unit_count": parse_query("u(count()) :- premium_store(s) ; discontinued(s)"),
            "plain_a": parse_query("q(s) :- returns(s, p), premium_store(s)"),
            "plain_b": parse_query("q(x) :- returns(x, y), premium_store(x)"),
            "plain_swap": parse_query("q(y) :- premium_store(y), returns(y, w)"),
            "plain_c": parse_query("q(s) :- returns(s, p)"),
            "largest": parse_query("m(s, max(a)) :- returns(s, p), premium_store(s), a = p"),
        }
    )
    return catalog


class TestSweepPlanner:
    def test_partition_covers_every_cell_exactly_once(self):
        catalog = _mixed_catalog()
        plan = plan_catalog_sweep(catalog, context=SharedBaseContext.from_catalog(catalog.values()))
        names = sorted(catalog)
        all_pairs = {
            (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
        }
        covered = list(plan.pair_path)
        for group in plan.groups:
            covered.extend(group.pairs)
        assert sorted(covered) == sorted(all_pairs)
        assert len(covered) == len(set(covered))

    def test_plain_and_count_groups_are_formed(self):
        catalog = _mixed_catalog()
        plan = plan_catalog_sweep(catalog)
        keys = {group.key[:2] for group in plan.groups}
        assert ("plain",) in {key[:1] for key in keys}
        assert any(key[0] == "agg" and key[1] == "count" for key in keys)

    def test_quasilinear_and_mixed_shape_cells_stay_on_pair_path(self):
        catalog = {
            "lin_a": parse_query("q(s, count()) :- returns(s, p)"),
            "lin_b": parse_query("q(x, count()) :- returns(x, y)"),
            "plain": parse_query("q(s) :- returns(s, p)"),
        }
        plan = plan_catalog_sweep(catalog)
        # Both aggregate cells are quasilinear-decidable, the mixed-shape
        # cells are incomparable; nothing qualifies for a sweep, and the lone
        # plain query has no partner.
        assert plan.groups == []
        assert len(plan.pair_path) == 3

    def test_normalized_pairs_use_count_forms(self):
        catalog = {
            "unit_sum": parse_query(
                "u(sum(w)) :- premium_store(s), w = v, v = 1 ; discontinued(s), w = 1"
            ),
            "unit_count": parse_query("u(count()) :- premium_store(s) ; discontinued(s)"),
            "unit_count2": parse_query("u(count()) :- discontinued(s) ; premium_store(s)"),
        }
        plan = plan_catalog_sweep(catalog)
        (group,) = plan.groups
        assert group.queries["unit_sum"].aggregate.function == "count"
        cell = group.cells[("unit_count", "unit_sum")]
        assert cell.normalized and "normalization" in cell.method

    def test_single_cell_groups_fall_back_to_pair_tasks(self):
        catalog = {
            "audit_a": _audit_catalog()["audit_a"],
            "audit_b": _audit_catalog()["audit_b"],
        }
        plan = plan_catalog_sweep(catalog)
        assert plan.groups == []
        assert plan.pair_path == [("audit_a", "audit_b")]

    def test_groups_are_keyed_by_predicate_signature(self):
        # audit queries (three predicates) and two-predicate unit queries in
        # one count class: sweeping them together would enumerate subsets of
        # the *union* vocabulary — exponentially worse than the pair path for
        # the equivalent cells — so groups never mix signatures and the
        # cross-signature cells stay on the pair path.
        catalog = _audit_catalog()
        catalog["unit_a"] = parse_query("u(count()) :- premium_store(s) ; discontinued(s)")
        catalog["unit_b"] = parse_query("u(count()) :- discontinued(s) ; premium_store(s)")
        catalog["unit_c"] = parse_query("u(count()) :- premium_store(x) ; discontinued(x)")
        plan = plan_catalog_sweep(catalog)
        for group in plan.groups:
            signatures = {frozenset(query.predicates()) for query in group.queries.values()}
            assert len(signatures) == 1
        assert {"unit_a", "unit_b", "unit_c"} in [
            set(group.queries) for group in plan.groups
        ]
        cross = [
            pair
            for pair in plan.pair_path
            if frozenset(catalog[pair[0]].predicates())
            != frozenset(catalog[pair[1]].predicates())
        ]
        assert cross  # cross-signature cells fell back to pair tasks
        # A group whose own BASE blows the budget dissolves to pair tasks.
        tiny = plan_catalog_sweep(catalog, max_subsets=1 << 4)
        assert all(len(group.queries) <= 3 for group in tiny.groups)

    def test_comparison_carrying_cells_keep_pair_local_bounds(self):
        # Comparison-carrying pairs get no shared-Γ payoff, so their sweep
        # groups are keyed by the exact (constants, τ) BASE recipe: every
        # cell reports the same ``bound τ`` as the pair path instead of a
        # group-max bound over a needlessly larger BASE.
        catalog = {
            "c1": parse_query("q(count()) :- r(a), a > 0 ; r(a), a < 0"),
            "c2": parse_query("q(count()) :- r(a), a < 0 ; r(a), a > 0"),
            "c3": parse_query("q(count()) :- r(a), r(c), a > 0 ; r(a), a < 0"),
        }
        swept = equivalence_matrix(catalog, sweep=True, seed=2, workers=1)
        pairwise = equivalence_matrix(catalog, sweep=False, seed=2, workers=1)
        for pair in swept:
            assert swept[pair].verdict is pairwise[pair].verdict, pair
            assert swept[pair].details == pairwise[pair].details, pair

    def test_disjoint_vocabularies_never_share_a_sweep(self):
        # Two equivalent pairs over disjoint vocabularies: a union sweep
        # would pay 2^(|BASE_a| + |BASE_b|) subsets; the plan keeps them in
        # separate groups whose combined work matches the pair path's.
        catalog = {
            "r1": parse_query("q(x) :- r(x, y), s(x)"),
            "r2": parse_query("q(a) :- s(a), r(a, b)"),
            "t1": parse_query("q(x) :- t(x, y), u(x)"),
            "t2": parse_query("q(a) :- u(a), t(a, b)"),
        }
        plan = plan_catalog_sweep(catalog)
        for group in plan.groups:
            vocabularies = {
                frozenset(query.predicates()) for query in group.queries.values()
            }
            assert len(vocabularies) == 1
        swept = equivalence_matrix(catalog, sweep=True, seed=1)
        pairwise = equivalence_matrix(catalog, sweep=False, seed=1)
        for pair in swept:
            assert swept[pair].verdict is pairwise[pair].verdict
            total = swept[pair].report.subsets_examined if swept[pair].report else 0
            # Nothing ever enumerates the 2^16-ish union space.
            assert total < 2_000


# ----------------------------------------------------------------------
# sweep_equivalence (direct)
# ----------------------------------------------------------------------
class TestSweepEquivalence:
    def test_unknown_pair_name_raises(self):
        first = parse_query("q(count()) :- p(y)")
        with pytest.raises(ReproError):
            sweep_equivalence({"a": first}, [("a", "missing")], 1)

    def test_budget_guard_raises(self):
        first = parse_query("q(count()) :- p(y, z)")
        second = parse_query("q(count()) :- p(z, y)")
        with pytest.raises(SearchSpaceBudgetError):
            sweep_equivalence({"a": first, "b": second}, [("a", "b")], 8)

    def test_mixed_shapes_raise(self):
        catalog = {
            "agg": parse_query("q(count()) :- p(y)"),
            "plain": parse_query("q(y) :- p(y)"),
        }
        with pytest.raises(ReproError):
            sweep_equivalence(catalog, [("agg", "plain")], 1)

    def test_matches_pair_local_reports(self):
        from repro.core.bounded import local_equivalence

        catalog = {
            "a": parse_query("q(count()) :- p(y), not r(y)"),
            "b": parse_query("q(count()) :- not r(y), p(y)"),
            "c": parse_query("q(count()) :- p(y)"),
        }
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        reports = sweep_equivalence(catalog, pairs, 2, seed=5, workers=1)
        for name_a, name_b in pairs:
            reference = local_equivalence(catalog[name_a], catalog[name_b], seed=0)
            report = reports[(name_a, name_b)]
            assert report.equivalent == reference.equivalent
            if not report.equivalent:
                assert report.counterexample.database == reference.counterexample.database


# ----------------------------------------------------------------------
# Group-comparison kernels
# ----------------------------------------------------------------------
class TestComparisonKernels:
    def test_equal_groups_intern_to_one_index(self):
        clear_symbolic_caches()
        from repro.core.bounded import build_base
        from repro.orderings.complete_orderings import enumerate_complete_orderings
        from repro.domains import Domain

        first = parse_query("q(count()) :- p(y), r(y)")
        second = parse_query("q(count()) :- r(y), p(y)")
        terms, base, fresh = build_base(first, second, 1)
        ordering = next(iter(enumerate_complete_orderings(terms, Domain.RATIONALS)))
        database = SymbolicDatabase(frozenset(base), ordering)
        left = symbolic_group_index(first, database)
        right = symbolic_group_index(second, database)
        assert left is right  # interned: equal content, one object
        comparison = compare_symbolic_groups(first, second, database)
        assert comparison.keys_match and not comparison.residual

    def test_key_mismatch_and_residual(self):
        clear_symbolic_caches()
        from repro.core.bounded import build_base
        from repro.orderings.complete_orderings import enumerate_complete_orderings
        from repro.domains import Domain

        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, sum(y)) :- p(x, y) ; p(x, y)")
        terms, base, fresh = build_base(first, second, 2)
        ordering = next(iter(enumerate_complete_orderings(terms, Domain.RATIONALS)))
        database = SymbolicDatabase(frozenset(base), ordering)
        comparison = compare_symbolic_groups(first, second, database)
        # Same keys, doubled bags: every group lands in the residual.
        assert comparison.keys_match
        assert comparison.residual
        for _key, left_bag, right_bag in comparison.residual:
            assert len(right_bag) == 2 * len(left_bag)


# ----------------------------------------------------------------------
# Differential: sweep vs pairwise, serial and parallel
# ----------------------------------------------------------------------
def _assert_cells_match(swept, pairwise, *, require_same_witness_db: bool):
    assert set(swept) == set(pairwise)
    for pair in swept:
        sweep_cell, pair_cell = swept[pair], pairwise[pair]
        assert sweep_cell.verdict is pair_cell.verdict, pair
        assert sweep_cell.method == pair_cell.method, pair
        assert (sweep_cell.counterexample is None) == (
            pair_cell.counterexample is None
        ), pair
        if require_same_witness_db and sweep_cell.counterexample is not None:
            assert (
                sweep_cell.counterexample.database == pair_cell.counterexample.database
            ), pair


def _scenario_catalogs():
    warehouse = build_warehouse(stores=2, products=3, sales_per_store=4, seed=3)
    analyst = {
        name: warehouse.queries[name]
        for name in ("revenue_per_store", "revenue_per_store_alt", "largest_sale")
    }
    analyst["unit_sales"] = parse_query("units(s, sum(u)) :- sales(s, p, a), u = 1")
    analyst["unit_sales_chain"] = parse_query(
        "units(s, sum(u)) :- sales(s, p, a), u = z, z = 1"
    )
    analyst["sales_count"] = parse_query("units(s, count()) :- sales(s, p, a)")
    analyst["plain"] = parse_query("q(s) :- sales(s, p, a)")
    return {
        "analyst": analyst,
        "audit": _audit_catalog(),
        "mixed": _mixed_catalog(),
    }


class TestDifferentialSweep:
    @pytest.mark.parametrize("name", ["analyst", "audit", "mixed"])
    def test_sweep_matches_pairwise_serial(self, name):
        catalog = _scenario_catalogs()[name]
        swept = equivalence_matrix(
            catalog, workers=1, seed=5, counterexample_trials=60, sweep=True
        )
        pairwise = equivalence_matrix(
            catalog, workers=1, seed=5, counterexample_trials=60, sweep=False
        )
        # The audit/mixed sweeps share the pair BASEs (same vocabulary and
        # shared context), so even the witness databases coincide — except
        # when REPRO_WORKERS forces the cells' *inner* bounded searches onto
        # a pool, where early-exit races may pick a different (equally
        # valid) witness.
        _assert_cells_match(
            swept, pairwise, require_same_witness_db=default_workers() == 1
        )

    @pytest.mark.parametrize("name", ["audit", "mixed"])
    def test_sweep_matches_pairwise_two_workers(self, name):
        catalog = _scenario_catalogs()[name]
        swept = equivalence_matrix(
            catalog, workers=2, seed=5, counterexample_trials=60, sweep=True
        )
        pairwise = equivalence_matrix(
            catalog, workers=1, seed=5, counterexample_trials=60, sweep=False
        )
        # Parallel sweeps keep verdicts and methods; under early-exit races
        # a different (equally valid) witness may be chosen.
        _assert_cells_match(swept, pairwise, require_same_witness_db=False)

    def test_sweep_is_seed_reproducible(self):
        # workers=1 keeps the matrix serial, but the cells' *inner* bounded
        # searches still honour REPRO_WORKERS; under a pool, early-exit
        # cancellation may pick a different (equally valid) witness between
        # runs, so exact witness equality is only asserted when the whole
        # stack is serial.
        catalog = _scenario_catalogs()["mixed"]
        first = equivalence_matrix(
            catalog, seed=9, counterexample_trials=60, sweep=True, workers=1
        )
        second = equivalence_matrix(
            catalog, seed=9, counterexample_trials=60, sweep=True, workers=1
        )
        fully_serial = default_workers() == 1
        for pair in first:
            assert first[pair].verdict is second[pair].verdict
            left, right = first[pair].counterexample, second[pair].counterexample
            assert (left is None) == (right is None)
            if left is not None and fully_serial:
                assert left.database == right.database

    def test_sweep_off_matches_pr2_shape(self):
        # sweep=False must keep producing the task-path results (guard for
        # the ablation/benchmark baseline).
        catalog = _scenario_catalogs()["audit"]
        results = equivalence_matrix(catalog, sweep=False, counterexample_trials=60)
        assert len(results) == len(catalog) * (len(catalog) - 1) // 2


# ----------------------------------------------------------------------
# Cached structural hashes
# ----------------------------------------------------------------------
class TestCachedHashes:
    def test_hash_is_cached_and_stable(self):
        query = parse_query("q(s, count()) :- p(s, a), not r(s)")
        first_hash = hash(query)
        assert query.__dict__.get("_cached_hash") == first_hash
        assert hash(query) == first_hash
        twin = parse_query("q(s, count()) :- p(s, a), not r(s)")
        assert hash(twin) == first_hash and twin == query

    def test_pickle_strips_cached_hashes(self):
        # Hash randomization is per interpreter: a cached hash that crossed a
        # spawn boundary would corrupt dict lookups in the worker.  Pickling
        # must drop the caches (fork inherits them validly either way).
        import pickle

        query = parse_query("q(s, count()) :- p(s, a)")
        hash(query)
        for disjunct in query.disjuncts:
            hash(disjunct)
            for literal in disjunct.literals:
                hash(literal)
        clone = pickle.loads(pickle.dumps(query))
        assert "_cached_hash" not in clone.__dict__
        assert all(
            "_cached_hash" not in disjunct.__dict__ for disjunct in clone.disjuncts
        )
        assert clone == query and hash(clone) == hash(query)


# ----------------------------------------------------------------------
# REPRO_WORKERS hygiene
# ----------------------------------------------------------------------
class TestWorkersEnvironment:
    def test_malformed_value_warns_and_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "two")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS='two'"):
            assert default_workers() == 1

    def test_valid_and_missing_values_do_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_workers() == 1
