"""Tests for the concrete aggregation functions (apply semantics and traits)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aggregates import (
    AVG,
    BOT2,
    CNTD,
    COUNT,
    MAX,
    MIN,
    PAPER_FUNCTIONS,
    PARITY,
    PROD,
    SUM,
    TOP2,
    TopK,
    get_function,
    registered_function_names,
)
from repro.errors import UnsupportedAggregateError

values = st.lists(st.integers(min_value=-20, max_value=20), max_size=8)


class TestRegistry:
    def test_lookup_by_name_and_alias(self):
        assert get_function("sum") is SUM
        assert get_function("SUM") is SUM
        assert get_function("count_distinct") is CNTD
        assert get_function("average") is AVG
        assert get_function("product") is PROD

    def test_unknown_function(self):
        with pytest.raises(UnsupportedAggregateError):
            get_function("median")

    def test_registered_names_cover_paper_functions(self):
        names = registered_function_names()
        for function in PAPER_FUNCTIONS:
            assert function.name in names

    def test_topk_family_registered(self):
        assert get_function("top3").k == 3
        assert get_function("bot4").k == 4


class TestApply:
    def test_count_and_parity(self):
        assert COUNT.apply([(), (), ()]) == 3
        assert COUNT.apply([]) == 0
        assert PARITY.apply([(), (), ()]) == 1
        assert PARITY.apply([(), ()]) == 0

    def test_sum_prod_avg(self):
        assert SUM.apply([1, 2, 3]) == 6
        assert SUM.apply([]) == 0
        assert PROD.apply([2, 3, 4]) == 24
        assert PROD.apply([]) == 1
        assert PROD.apply([2, 0, 5]) == 0
        assert AVG.apply([1, 2]) == Fraction(3, 2)
        assert AVG.apply([2, 2]) == 2
        assert AVG.apply([]) is None

    def test_sum_accepts_tuples_and_scalars(self):
        assert SUM.apply([(1,), (2,)]) == SUM.apply([1, 2])

    def test_max_min(self):
        assert MAX.apply([3, 1, 7]) == 7
        assert MIN.apply([3, 1, 7]) == 1
        assert MAX.apply([]) is None
        assert MAX.apply([Fraction(1, 2), 0]) == Fraction(1, 2)

    def test_top2_bot2(self):
        assert TOP2.apply([5, 2, 5, 1]) == (5, 2)
        assert TOP2.apply([5]) == (5,)
        assert TOP2.apply([]) == ()
        assert BOT2.apply([5, 2, 5, 1]) == (1, 2)
        assert TopK(3).apply([9, 1, 4, 9, 6]) == (9, 6, 4)

    def test_cntd(self):
        assert CNTD.apply([1, 1, 2]) == 2
        assert CNTD.apply([(1, 2), (1, 2), (2, 1)]) == 2
        assert CNTD.apply([]) == 0

    def test_sum_rejects_pairs(self):
        with pytest.raises(UnsupportedAggregateError):
            SUM.apply([(1, 2)])

    def test_fractional_arithmetic_is_exact(self):
        assert SUM.apply([Fraction(1, 3)] * 3) == 1
        assert AVG.apply([Fraction(1, 3), Fraction(2, 3)]) == Fraction(1, 2)
        assert PROD.apply([Fraction(1, 2), Fraction(2, 3)]) == Fraction(1, 3)


class TestDeclaredTraits:
    def test_monoidal_classification(self):
        assert COUNT.is_group_monoidal and SUM.is_group_monoidal and PARITY.is_group_monoidal
        assert MAX.is_idempotent_monoidal and TOP2.is_idempotent_monoidal
        assert not AVG.is_monoidal and not CNTD.is_monoidal

    def test_decomposability(self):
        assert COUNT.is_decomposable and SUM.is_decomposable and MAX.is_decomposable
        assert TOP2.is_decomposable and PARITY.is_decomposable
        assert not AVG.is_decomposable and not CNTD.is_decomposable
        assert not PROD.is_decomposable and PROD.decomposable_over_nonzero_only

    def test_shiftability_flags(self):
        assert COUNT.is_shiftable and MAX.is_shiftable and TOP2.is_shiftable
        assert CNTD.is_shiftable and PARITY.is_shiftable
        assert not SUM.is_shiftable and not PROD.is_shiftable and not AVG.is_shiftable

    def test_singleton_determining_flags(self):
        for function in (COUNT, MAX, SUM, PROD, TOP2, AVG, PARITY):
            assert function.is_singleton_determining
        assert not CNTD.is_singleton_determining

    def test_order_decidable_everywhere(self):
        from repro.domains import Domain

        for function in PAPER_FUNCTIONS:
            assert function.is_order_decidable_over(Domain.RATIONALS)
            assert function.is_order_decidable_over(Domain.INTEGERS)

    def test_min_bot2_mirror_max_top2(self):
        assert MIN.is_shiftable and MIN.is_idempotent_monoidal and MIN.is_singleton_determining
        assert BOT2.is_shiftable and BOT2.is_idempotent_monoidal


class TestAgainstMonoidDefinition:
    """α_f^+(B) must equal the monoid fold of f over the bag (Section 2)."""

    @given(bag=values)
    def test_sum_is_monoid_fold(self, bag):
        monoid = SUM.monoid
        assert SUM.apply(bag) == monoid.combine(bag)

    @given(bag=values)
    def test_count_is_monoid_fold(self, bag):
        monoid = COUNT.monoid
        assert COUNT.apply([()] * len(bag)) == monoid.combine(1 for _ in bag)

    @given(bag=values)
    def test_parity_is_monoid_fold(self, bag):
        monoid = PARITY.monoid
        assert PARITY.apply([()] * len(bag)) == monoid.combine(1 for _ in bag)

    @given(bag=values)
    def test_max_is_monoid_fold(self, bag):
        monoid = MAX.monoid
        assert MAX.apply(bag) == monoid.combine(bag)

    @given(bag=values)
    def test_top2_is_monoid_fold(self, bag):
        monoid = TOP2.monoid
        assert TOP2.apply(bag) == monoid.combine((value,) for value in bag)

    @given(bag=st.lists(st.integers(min_value=1, max_value=9), max_size=6))
    def test_prod_is_monoid_fold_over_nonzero(self, bag):
        monoid = PROD.monoid
        assert PROD.apply(bag) == monoid.combine(bag)
