"""Tests for the abstract properties of aggregation functions and Table 1."""

import random

import pytest

from repro.aggregates import (
    AVG,
    BOT2,
    CNTD,
    COUNT,
    MAX,
    MIN,
    PAPER_FUNCTIONS,
    PARITY,
    PROD,
    SUM,
    TOP2,
    PAPER_TABLE1,
    build_table1,
    duplicate_insensitivity_counterexample,
    format_table1,
    group_decomposition_counterexample,
    idempotent_decomposition_counterexample,
    shiftability_counterexample,
    singleton_determining_counterexample,
    table1_matches_paper,
)


@pytest.fixture
def rng():
    return random.Random(12345)


class TestShiftability:
    @pytest.mark.parametrize("function", [COUNT, PARITY, CNTD, MAX, TOP2], ids=lambda f: f.name)
    def test_shiftable_functions_have_no_counterexample(self, function, rng):
        assert shiftability_counterexample(function, rng, trials=150) is None

    @pytest.mark.parametrize("function", [SUM, PROD, AVG], ids=lambda f: f.name)
    def test_non_shiftable_functions_have_counterexamples(self, function, rng):
        witness = shiftability_counterexample(function, rng, trials=2000)
        assert witness is not None, f"{function.name} should not be shiftable"
        assert witness.before_equal != witness.after_equal

    def test_papers_own_counterexample_for_sum_and_prod(self):
        # Section 4.1: B = {2, 2}, B' = {4}, φ(2) = 3, φ(4) = 5.
        shift = {2: 3, 4: 5}
        before_sum = SUM.apply([2, 2]) == SUM.apply([4])
        after_sum = SUM.apply([3, 3]) == SUM.apply([5])
        assert before_sum and not after_sum
        before_prod = PROD.apply([2, 2]) == PROD.apply([4])
        after_prod = PROD.apply([shift[2], shift[2]]) == PROD.apply([shift[4]])
        assert before_prod and not after_prod


class TestDuplicateInsensitivity:
    """The duplicate-tolerance trait (readmits max/min/topK/cntd over
    duplicating views in the rewriting unfolder) cross-validated against the
    empirical checker."""

    @pytest.mark.parametrize("function", [MAX, MIN, TOP2, BOT2, CNTD], ids=lambda f: f.name)
    def test_insensitive_functions_have_no_counterexample(self, function, rng):
        assert function.is_duplicate_insensitive
        assert duplicate_insensitivity_counterexample(function, rng, trials=200) is None

    @pytest.mark.parametrize(
        "function", [COUNT, SUM, PROD, AVG, PARITY], ids=lambda f: f.name
    )
    def test_sensitive_functions_have_counterexamples(self, function, rng):
        assert not function.is_duplicate_insensitive
        witness = duplicate_insensitivity_counterexample(function, rng, trials=500)
        assert witness is not None, f"{function.name} should distinguish duplicates"
        assert witness.bag_value != witness.set_value

    def test_declared_traits_match_empirical_search(self, rng):
        for function in PAPER_FUNCTIONS:
            witness = duplicate_insensitivity_counterexample(function, rng, trials=300)
            assert (witness is None) == function.is_duplicate_insensitive, function.name


class TestSingletonDetermination:
    @pytest.mark.parametrize(
        "function", [COUNT, MAX, SUM, PROD, TOP2, AVG, PARITY], ids=lambda f: f.name
    )
    def test_singleton_determining_functions(self, function):
        assert singleton_determining_counterexample(function) is None

    def test_cntd_is_not_singleton_determining(self):
        witness = singleton_determining_counterexample(CNTD)
        assert witness is not None
        first, second = witness
        assert first != second and CNTD.apply([first]) == CNTD.apply([second])


class TestDecompositionPrinciples:
    @pytest.mark.parametrize("function", [MAX, TOP2], ids=lambda f: f.name)
    def test_idempotent_principle(self, function, rng):
        assert idempotent_decomposition_counterexample(function, rng, trials=80) is None

    @pytest.mark.parametrize("function", [COUNT, SUM, PARITY], ids=lambda f: f.name)
    def test_group_principle(self, function, rng):
        assert group_decomposition_counterexample(function, rng, trials=60) is None

    def test_principles_do_not_apply_to_non_monoidal_functions(self, rng):
        assert idempotent_decomposition_counterexample(AVG, rng) is None
        assert group_decomposition_counterexample(CNTD, rng) is None

    def test_inclusion_exclusion_reduces_to_cardinality_for_count(self):
        # Equation (9): |A ∪ B| = |A| + |B| - |A ∩ B| with count.
        family = [{(1,), (2,), (3,)}, {(2,), (3,), (4,)}]
        union = family[0] | family[1]
        direct = COUNT.apply(sorted(union))
        via_formula = (
            COUNT.apply(sorted(family[0]))
            + COUNT.apply(sorted(family[1]))
            - COUNT.apply(sorted(family[0] & family[1]))
        )
        assert direct == via_formula == 4


class TestTable1:
    def test_generated_table_matches_paper(self):
        rows = build_table1()
        assert table1_matches_paper(rows)

    def test_every_paper_function_has_a_row(self):
        rows = {row.function for row in build_table1()}
        assert rows == set(PAPER_TABLE1)

    def test_format_contains_all_functions(self):
        rendered = format_table1(build_table1())
        for function in PAPER_FUNCTIONS:
            assert function.name in rendered

    def test_prod_row_notes_nonzero_domain(self):
        row = next(row for row in build_table1() if row.function == "prod")
        assert row.decomposable_note == "over Q±"
        assert not row.decomposable

    def test_cntd_row(self):
        row = next(row for row in build_table1() if row.function == "cntd")
        assert row.shiftable and row.order_decidable
        assert not row.decomposable and not row.singleton_determining

    def test_mismatch_is_detected(self):
        rows = build_table1()
        rows[0].shiftable = not rows[0].shiftable
        assert not table1_matches_paper(rows)
