"""The persistent, rename-insensitive verdict store (``repro.store``).

Covers the three layers — canonical pair keys (``store.canon``), the
sqlite-backed :class:`VerdictStore` (``store.disk``), witness revalidation
(``store.witness``) — and the session/service integration: renamed
catalogs settle entirely from the store with zero new sweep enumerations,
near-miss pairs never collide, and a restart against the same
``REPRO_STORE_PATH`` reproduces every verdict cell-for-cell.
"""

from __future__ import annotations

import os

import pytest

from repro import Domain, parse_query
from repro.core.equivalence import Verdict, are_equivalent
from repro.datalog.queries import Query
from repro.datalog.terms import Variable
from repro.obs import REGISTRY
from repro.session import Workspace
from repro.store import (
    StoredRecord,
    VerdictStore,
    canonical_form,
    canonical_hash,
    pair_key,
    shared_store,
)
from repro.store.disk import decode_database, encode_database
from repro.workloads import build_warehouse
from repro.workloads.batch import equivalence_matrix


def renamed_copy(query: Query, prefix: str = "zz") -> Query:
    """The query with every variable renamed to a fresh, unrelated name (in
    reversed sorted order, so the renaming is not order-preserving)."""
    variables = sorted(query.variables(), reverse=True)
    mapping = {
        variable: Variable(f"{prefix}{index}") for index, variable in enumerate(variables)
    }
    return query.rename_variables(mapping)


def renamed_catalog(catalog: dict, prefix: str = "zz") -> dict:
    return {name: renamed_copy(query, prefix) for name, query in catalog.items()}


def scenario_catalogs() -> list[dict]:
    """Every scenario catalog the suite exercises canonical keying on."""
    import importlib.util
    import pathlib

    bench = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_catalog_sweep.py"
    spec = importlib.util.spec_from_file_location("bench_catalog_sweep", bench)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return [
        build_warehouse(stores=2, products=3, sales_per_store=4, seed=3).queries,
        module.build_audit_catalog(quick=True),
    ]


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
class TestCanonicalForm:
    def test_renaming_is_invisible_on_every_scenario_catalog(self):
        for catalog in scenario_catalogs():
            for name, query in catalog.items():
                renamed = renamed_copy(query)
                assert canonical_form(query) == canonical_form(renamed), name
                assert canonical_hash(query) == canonical_hash(renamed), name

    def test_literal_and_disjunct_reordering_is_invisible(self):
        first = parse_query("q(x) :- R(x, y), S(y, z), y > 1")
        second = parse_query("q(a) :- S(b, c), R(a, b), 1 < b")
        assert canonical_form(first) == canonical_form(second)
        left = parse_query("q(s, count()) :- R(s), P(s) ; R(s), D(s)")
        right = parse_query("q(a, count()) :- D(a), R(a) ; P(a), R(a)")
        # Disjunct order and per-disjunct literal order both normalize, but
        # the two disjuncts must end up aligned: b's disjuncts list D-first.
        assert canonical_form(left) == canonical_form(right)

    def test_entailed_equalities_converge(self):
        direct = parse_query("q(x) :- R(x, y), y = 1")
        chained = parse_query("q(x) :- R(x, y), y = z, z = 1")
        assert canonical_form(direct) == canonical_form(chained)

    def test_symmetric_variables_break_ties_consistently(self):
        first = parse_query("q() :- R(x, y), R(y, x)")
        second = parse_query("q() :- R(b, a), R(a, b)")
        assert canonical_form(first) == canonical_form(second)

    def test_near_miss_constants_do_not_collide(self):
        base = parse_query("q(x) :- R(x, y), S(y, z), y > 1")
        near = parse_query("q(x) :- R(x, y), S(y, z), y > 2")
        assert canonical_form(base) != canonical_form(near)
        assert canonical_hash(base) != canonical_hash(near)

    def test_duplicate_disjuncts_are_not_merged(self):
        # Under bag semantics a duplicated disjunct doubles its count
        # contribution (the audit_dup catalog entry), so dedup across
        # disjuncts would be unsound.  Dedup *within* a disjunct is sound.
        single = parse_query("a(s, count()) :- R(s, p)")
        doubled = parse_query("a(s, count()) :- R(s, p) ; R(s, p)")
        assert canonical_form(single) != canonical_form(doubled)
        within = parse_query("q(x) :- R(x), R(x)")
        flat = parse_query("q(x) :- R(x)")
        assert canonical_form(within) == canonical_form(flat)

    def test_pair_key_is_symmetric_with_orientation(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- S(x)")
        forward = pair_key(first, second)
        backward = pair_key(second, first)
        assert forward.key == backward.key
        assert forward.flipped != backward.flipped
        # A renamed copy maps to the same key with the same orientation.
        assert pair_key(renamed_copy(first), second).key == forward.key

    def test_canon_memo_serves_repeat_hashes(self):
        query = parse_query("q(x) :- R(x, y), S(y, x)")
        canonical_hash(query)
        before = REGISTRY.get("store.canon.hits")
        canonical_hash(query)
        assert REGISTRY.get("store.canon.hits") == before + 1


# ----------------------------------------------------------------------
# The store itself
# ----------------------------------------------------------------------
def settle(first: Query, second: Query):
    return are_equivalent(first, second)


class TestVerdictStore:
    def test_record_then_serve_renamed_duplicate(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- R(x), x > 0")
        result = settle(first, second)
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, result)
        served = store.serve(renamed_copy(first), renamed_copy(second), Domain.RATIONALS)
        assert served is not None
        assert served.verdict == result.verdict
        assert served.method == result.method

    def test_near_misses_do_not_collide_in_the_store(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- R(x), x > 0")
        near = parse_query("q(x) :- R(x), x > 1")
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, settle(first, second))
        assert store.serve(first, near, Domain.RATIONALS) is None

    def test_orientation_flips_witness_results(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- R(x), x > 0")
        result = settle(first, second)
        assert result.verdict == Verdict.NOT_EQUIVALENT
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, result)
        forward = store.serve(first, second, Domain.RATIONALS)
        backward = store.serve(second, first, Domain.RATIONALS)
        assert forward.counterexample.left_result == backward.counterexample.right_result
        assert forward.counterexample.right_result == backward.counterexample.left_result

    def test_disk_round_trip_across_instances(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite3")
        first = parse_query("q(x) :- R(x), S(x)")
        second = parse_query("q(b) :- S(b), R(b)")
        result = settle(first, second)
        writer = VerdictStore(path)
        writer.record(first, second, Domain.RATIONALS, result)
        writer.close()
        reader = VerdictStore(path)
        served = reader.serve(renamed_copy(first), second, Domain.RATIONALS)
        assert served is not None
        assert served.verdict == result.verdict == Verdict.EQUIVALENT
        assert served.method == result.method
        reader.close()

    def test_closed_store_is_a_silent_miss(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- S(x)")
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, settle(first, second))
        store.close()
        assert store.serve(first, second, Domain.RATIONALS) is None
        store.record(first, second, Domain.RATIONALS, settle(first, second))  # no-op

    def test_max_mb_evicts_least_recently_used_rows(self, tmp_path):
        import repro.store.disk as disk_module

        path = str(tmp_path / "bounded.sqlite3")
        store = VerdictStore(path, max_mb=0)  # every size check overflows
        result = settle(parse_query("q(x) :- R(x)"), parse_query("q(x) :- S(x)"))
        queries = [parse_query(f"q(x) :- T{index}(x)") for index in range(70)]
        written = 0
        for index in range(len(queries) - 1):
            store.record(queries[index], queries[index + 1], Domain.RATIONALS, result)
            written += 1
        assert written > disk_module._SIZE_CHECK_INTERVAL
        assert REGISTRY.get("store.disk.evicted") > 0
        assert len(store) < written
        store.close()

    def test_database_codec_round_trips_exact_values(self):
        from fractions import Fraction

        from repro.datalog.database import Database

        database = Database([("R", (1, Fraction(1, 3))), ("S", (-2,))])
        assert decode_database(encode_database(database)).facts == database.facts


# ----------------------------------------------------------------------
# Witness revalidation
# ----------------------------------------------------------------------
class TestWitnessRevalidation:
    def _settled_store(self):
        first = parse_query("q(x) :- R(x)")
        second = parse_query("q(x) :- R(x), x > 0")
        result = settle(first, second)
        assert result.verdict == Verdict.NOT_EQUIVALENT
        assert result.counterexample is not None and result.counterexample.database is not None
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, result)
        return store, first, second

    def test_live_witness_is_revalidated_and_served(self):
        store, first, second = self._settled_store()
        before = REGISTRY.get("store.witness.revalidated")
        served = store.serve(first, second, Domain.RATIONALS)
        assert served is not None and served.verdict == Verdict.NOT_EQUIVALENT
        assert REGISTRY.get("store.witness.revalidated") == before + 1
        # The served answers are freshly evaluated on the stored database.
        witness = served.counterexample
        assert witness.database is not None
        assert witness.left_result != witness.right_result

    def test_stale_witness_is_rejected_and_dropped(self):
        # Simulate a BASE change that invalidated the stored witness: replace
        # the witness database with one on which the queries *agree* (every
        # R-value positive), as an older BASE recipe could have produced.
        store, first, second = self._settled_store()
        key = pair_key(first, second)
        record = store.lookup(key.key)
        from repro.datalog.database import Database

        agreeing = Database([("R", (1,)), ("R", (2,))])
        record.payload["counterexample"]["database"] = encode_database(agreeing)
        store.write(record)
        before = REGISTRY.get("store.witness.stale")
        assert store.serve(first, second, Domain.RATIONALS) is None
        assert REGISTRY.get("store.witness.stale") == before + 1
        # The stale row was deleted: the pair is a clean miss now, so the
        # caller re-decides (witness re-derivation on demand).
        assert store.lookup(key.key) is None

    def test_undecodable_payload_is_a_miss(self):
        store, first, second = self._settled_store()
        key = pair_key(first, second)
        record = store.lookup(key.key)
        record.payload["counterexample"] = {"database": [["R", [{"t": "alien"}]]], "left": 0, "right": 1}
        store.write(record)
        assert store.serve(first, second, Domain.RATIONALS) is None

    def test_equivalent_verdicts_serve_without_reevaluation(self):
        first = parse_query("q(x) :- R(x), S(x)")
        second = parse_query("q(b) :- S(b), R(b)")
        result = settle(first, second)
        assert result.verdict == Verdict.EQUIVALENT
        store = VerdictStore()
        store.record(first, second, Domain.RATIONALS, result)
        before = REGISTRY.get("store.witness.revalidated")
        served = store.serve(first, second, Domain.RATIONALS)
        assert served is not None and served.verdict == Verdict.EQUIVALENT
        assert REGISTRY.get("store.witness.revalidated") == before


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
def small_catalog() -> dict:
    return {
        "ra": parse_query("q(x) :- R(x)"),
        "rb": parse_query("q(x) :- R(x), x > 0"),
        "rc": parse_query("q(x) :- R(x), S(x)"),
        "rd": parse_query("q(b) :- S(b), R(b)"),
    }


class TestWorkspaceIntegration:
    def test_renamed_catalog_settles_from_store_with_zero_sweeps(self):
        store = VerdictStore()
        with Workspace(workers=1, store=store) as first_session:
            for name, query in small_catalog().items():
                first_session.add(query, name=name)
            original = first_session.equivalences()
            assert first_session.stats().store_hits == 0
        sweep_before = REGISTRY.snapshot("sweep.")
        with Workspace(workers=1, store=store) as second_session:
            for name, query in renamed_catalog(small_catalog()).items():
                second_session.add(query, name=name)
            served = second_session.equivalences()
            stats = second_session.stats()
        # Every cell came from the store: nothing was decided, and the
        # sweep enumeration counters did not move at all.
        assert stats.decided_cells == 0
        assert stats.store_hits == len(served)
        growth = {
            name: value
            for name, value in REGISTRY.snapshot("sweep.").items()
            if value != sweep_before.get(name, 0)
        }
        assert growth == {}
        for pair, result in served.items():
            assert result.verdict == original[pair].verdict, pair
            assert result.method == original[pair].method, pair

    def test_store_provenance_is_recorded(self):
        store = VerdictStore()
        catalog = small_catalog()
        with Workspace(workers=1, store=store) as first_session:
            for name, query in catalog.items():
                first_session.add(query, name=name)
            first_session.equivalences()
        with Workspace(workers=1, store=store) as second_session:
            for name, query in renamed_catalog(catalog).items():
                second_session.add(query, name=name)
            second_session.equivalences()
            explanation = second_session.explain("ra", "rb")
        assert explanation.decision_path == "store"
        assert explanation.cache_served is True

    def test_restart_round_trip_on_disk(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite3")
        catalog = small_catalog()
        with Workspace(workers=1, store=VerdictStore(path)) as first_session:
            for name, query in catalog.items():
                first_session.add(query, name=name)
            original = first_session.equivalences()
        first_store_hits = REGISTRY.get("store.disk.hits")
        # "Restart": a brand-new store instance over the same file, fed the
        # renamed catalog — rename-insensitivity and persistence together.
        with Workspace(workers=1, store=VerdictStore(path)) as second_session:
            for name, query in renamed_catalog(catalog).items():
                second_session.add(query, name=name)
            rerun = second_session.equivalences()
            stats = second_session.stats()
        assert stats.decided_cells == 0
        assert stats.store_hits == len(rerun)
        assert REGISTRY.get("store.disk.hits") > first_store_hits
        for pair, result in rerun.items():
            assert result.verdict == original[pair].verdict, pair
            assert result.method == original[pair].method, pair

    def test_bare_workspace_is_storeless_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_PATH", raising=False)
        with Workspace(workers=1) as session:
            assert session.store is None

    def test_env_path_opts_bare_workspaces_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "env.sqlite3"))
        with Workspace(workers=1) as session:
            assert session.store is not None
            assert session.store.persistent
        assert session.store is shared_store()

    def test_equivalence_matrix_shim_stays_self_contained(self, tmp_path, monkeypatch):
        # The one-shot entry point must not read or write the process store,
        # even when the env var opts the process in.
        path = tmp_path / "shim.sqlite3"
        monkeypatch.setenv("REPRO_STORE_PATH", str(path))
        catalog = small_catalog()
        first = equivalence_matrix(catalog, workers=1)
        second = equivalence_matrix(catalog, workers=1)
        assert {p: r.verdict for p, r in first.items()} == {
            p: r.verdict for p, r in second.items()
        }
        assert not path.exists()

    def test_serial_and_two_worker_sessions_agree_with_store(self):
        catalog = small_catalog()
        matrices = {}
        stores = {}
        for workers in (1, 2):
            store = VerdictStore()
            with Workspace(workers=workers, store=store) as session:
                for name, query in catalog.items():
                    session.add(query, name=name)
                matrices[workers] = session.equivalences()
                assert session.stats().store_hits == 0
            stores[workers] = store
        for pair, result in matrices[1].items():
            assert result.verdict == matrices[2][pair].verdict, pair
            assert result.method == matrices[2][pair].method, pair
        # The stores are interchangeable: what the parallel session wrote
        # serves a serial session's renamed catalog, and vice versa.
        for workers, other in ((1, 2), (2, 1)):
            with Workspace(workers=1, store=stores[other]) as session:
                for name, query in renamed_catalog(catalog).items():
                    session.add(query, name=name)
                served = session.equivalences()
                assert session.stats().decided_cells == 0
                assert session.stats().store_hits == len(served)
