"""The static-analysis framework and the five repo invariant checkers.

Each rule is exercised on a minimal violating fixture (asserting the
finding's file *and* line) and a clean counterpart; suppressions are
round-tripped (honoured with a reason, reported without one, reported for
unknown rules); and the analyzer is run over the installed ``repro``
package itself, which must be clean — the same gate CI enforces via
``python -m repro.analysis``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    Program,
    analyze_paths,
    default_root,
    main,
    run_checkers,
)
from repro.analysis.checkers import (
    CacheDisciplineChecker,
    EngineThreadingChecker,
    ForkSafetyChecker,
    SeededRandomnessChecker,
    VerdictSoundnessChecker,
)


def findings_for(sources: dict[str, str], checker) -> list:
    return run_checkers(Program.from_sources(sources), [checker])


def locations(findings) -> list[tuple[str, int, str]]:
    return [(f.path, f.line, f.rule) for f in findings]


# ----------------------------------------------------------------------
# cache-discipline
# ----------------------------------------------------------------------
class TestCacheDiscipline:
    checker = CacheDisciplineChecker()

    def test_unregistered_cache_is_flagged_at_definition_line(self):
        findings = findings_for({"mod.py": "X = 1\n_CACHE = {}\n"}, self.checker)
        assert locations(findings) == [("mod.py", 2, "cache-discipline")]
        assert "_CACHE" in findings[0].message

    def test_registered_cache_is_clean(self):
        source = (
            "_CACHE = {}\n"
            'register_cache("mod.py:_CACHE", "clear_evaluation_caches", _CACHE.clear)\n'
        )
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_exempted_cache_with_reason_is_clean(self):
        source = (
            "_TABLE = {}\n"
            "EXEMPT_CACHES = {\n"
            '    "mod.py:_TABLE": "frozen after import",\n'
            '    "mod.py:EXEMPT_CACHES": "the manifest itself",\n'
            "}\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_annotated_exemption_manifest_is_recognised(self):
        source = (
            "_TABLE = {}\n"
            "EXEMPT_CACHES: dict[str, str] = {\n"
            '    "mod.py:_TABLE": "frozen after import",\n'
            '    "mod.py:EXEMPT_CACHES": "the manifest itself",\n'
            "}\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_exemption_without_reason_is_flagged(self):
        source = (
            "_TABLE = {}\n"
            "EXEMPT_CACHES = {\n"
            '    "mod.py:_TABLE": "",\n'
            '    "mod.py:EXEMPT_CACHES": "the manifest itself",\n'
            "}\n"
        )
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 3, "cache-discipline")]
        assert "no reason" in findings[0].message

    def test_registered_and_exempted_conflict_is_flagged(self):
        source = (
            "_CACHE = {}\n"
            'register_cache("mod.py:_CACHE", "clear_evaluation_caches", _CACHE.clear)\n'
            "EXEMPT_CACHES = {\n"
            '    "mod.py:_CACHE": "also exempt",\n'
            '    "mod.py:EXEMPT_CACHES": "the manifest itself",\n'
            "}\n"
        )
        findings = findings_for({"mod.py": source}, self.checker)
        assert any("both registered and exempted" in f.message for f in findings)

    def test_stale_registration_is_flagged(self):
        source = 'register_cache("mod.py:_GONE", "clear_evaluation_caches", None)\n'
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 1, "cache-discipline")]
        assert "stale registration" in findings[0].message

    def test_store_layer_cache_idioms_are_clean(self):
        """The two idioms the verdict store introduced: an ``OrderedDict``
        LRU memo registered with its own ``.clear``, and a dict-shaped
        singleton slot whose clearer is a module function that also closes
        the held resource.  Both register under ``clear_service_caches``."""
        canon = (
            "_CANON_LRU = OrderedDict()\n"
            'register_cache("canon.py:_CANON_LRU", "clear_service_caches", _CANON_LRU.clear)\n'
        )
        disk = (
            "_SHARED_STORE = {}\n"
            "def reset_shared_store():\n"
            '    store = _SHARED_STORE.pop("store", None)\n'
            "    if store is not None:\n"
            "        store.close()\n"
            'register_cache("disk.py:_SHARED_STORE", "clear_service_caches", reset_shared_store)\n'
        )
        assert findings_for({"canon.py": canon, "disk.py": disk}, self.checker) == []

    def test_unregistered_store_layer_lru_is_flagged(self):
        findings = findings_for({"canon.py": "_CANON_LRU = OrderedDict()\n"}, self.checker)
        assert locations(findings) == [("canon.py", 1, "cache-discipline")]
        assert "_CANON_LRU" in findings[0].message

    def test_singleton_slot_registered_under_wrong_module_is_flagged(self):
        sources = {
            "disk.py": "_SHARED_STORE = {}\n",
            "other.py": (
                'register_cache("disk.py:_SHARED_STORE", "clear_service_caches", None)\n'
            ),
        }
        findings = findings_for(sources, self.checker)
        assert ("other.py", 1, "cache-discipline") in locations(findings)

    def test_registration_must_sit_in_the_defining_module(self):
        sources = {
            "a.py": "_CACHE = {}\n",
            "b.py": 'register_cache("a.py:_CACHE", "clear_evaluation_caches", None)\n',
        }
        findings = findings_for(sources, self.checker)
        assert ("b.py", 1, "cache-discipline") in locations(findings)
        assert any("module that defines it" in f.message for f in findings)

    def test_non_literal_key_is_flagged(self):
        source = (
            "_CACHE = {}\n"
            "KEY = 'mod.py:_CACHE'\n"
            'register_cache(KEY, "clear_evaluation_caches", _CACHE.clear)\n'
        )
        findings = findings_for({"mod.py": source}, self.checker)
        assert any("string literal" in f.message for f in findings)

    def test_dunder_all_is_auto_exempt(self):
        assert findings_for({"mod.py": '__all__ = ["x"]\n'}, self.checker) == []


# ----------------------------------------------------------------------
# seeded-randomness
# ----------------------------------------------------------------------
class TestSeededRandomness:
    checker = SeededRandomnessChecker()

    def test_global_draw_is_flagged(self):
        source = "import random\n\nx = random.random()\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 3, "seeded-randomness")]

    def test_global_choice_and_shuffle_are_flagged(self):
        source = "import random\na = random.choice([1])\nrandom.shuffle([])\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert [f.line for f in findings] == [2, 3]

    def test_argless_random_constructor_is_flagged(self):
        source = "import random\nrng = random.Random()\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 2, "seeded-randomness")]

    def test_from_import_of_a_draw_is_flagged(self):
        source = "from random import choice\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 1, "seeded-randomness")]

    def test_seeded_rng_is_clean(self):
        source = (
            "import random\n"
            "rng = random.Random(7)\n"
            "x = rng.random()\n"
            "y = rng.choice([1, 2])\n"
            "klass = random.Random\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []


# ----------------------------------------------------------------------
# verdict-soundness
# ----------------------------------------------------------------------
class TestVerdictSoundness:
    checker = VerdictSoundnessChecker()

    def test_witnessless_refutation_is_flagged(self):
        source = "result = EquivalenceResult(Verdict.NOT_EQUIVALENT)\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert locations(findings) == [("mod.py", 1, "verdict-soundness")]

    def test_none_witness_is_still_flagged(self):
        source = "r = EquivalenceResult(Verdict.NOT_EQUIVALENT, counterexample=None)\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert len(findings) == 1

    def test_counterexample_witness_is_clean(self):
        source = "r = EquivalenceResult(Verdict.NOT_EQUIVALENT, counterexample=ce)\n"
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_report_witness_is_clean(self):
        source = "r = EquivalenceResult(verdict=Verdict.NOT_EQUIVALENT, report=rep)\n"
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_other_verdicts_are_clean(self):
        source = "r = EquivalenceResult(Verdict.EQUIVALENT)\n"
        assert findings_for({"mod.py": source}, self.checker) == []


# ----------------------------------------------------------------------
# fork-safety
# ----------------------------------------------------------------------
class TestForkSafety:
    checker = ForkSafetyChecker()

    def test_callable_field_is_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "\n"
            "@dataclass\n"
            "class EvilTask:\n"
            "    fn: Callable\n"
        )
        findings = findings_for({"tasks.py": source}, self.checker)
        assert locations(findings) == [("tasks.py", 6, "fork-safety")]
        assert "EvilTask.fn" in findings[0].message

    def test_lambda_default_is_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class LazyTask:\n"
            "    thunk: object = lambda: 1\n"
        )
        findings = findings_for({"tasks.py": source}, self.checker)
        assert locations(findings) == [("tasks.py", 5, "fork-safety")]

    def test_cache_default_is_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            "_MEMO = {}\n"
            'register_cache("tasks.py:_MEMO", "clear_evaluation_caches", _MEMO.clear)\n'
            "\n"
            "@dataclass\n"
            "class ShippingTask:\n"
            "    payload: object = _MEMO\n"
        )
        findings = findings_for({"tasks.py": source}, self.checker)
        assert locations(findings) == [("tasks.py", 8, "fork-safety")]
        assert "_MEMO" in findings[0].message

    def test_plain_data_task_is_clean(self):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class GoodTask:\n"
            "    index: int\n"
            "    names: tuple\n"
            "    engine: Optional[str] = None\n"
        )
        assert findings_for({"tasks.py": source}, self.checker) == []

    def test_non_task_dataclass_is_ignored(self):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "\n"
            "@dataclass\n"
            "class NotATaskHolder:\n"
            "    fn: Callable\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []


# ----------------------------------------------------------------------
# engine-threading
# ----------------------------------------------------------------------
class TestEngineThreading:
    checker = EngineThreadingChecker()

    def test_driver_import_outside_engine_is_flagged(self):
        source = "from .engine.compile import compiled_evaluate_set\n"
        findings = findings_for({"core/decide.py": source}, self.checker)
        assert locations(findings) == [("core/decide.py", 1, "engine-threading")]

    def test_driver_call_outside_engine_is_flagged(self):
        source = "import repro.engine.compile as c\nrows = c.compiled_evaluate_set(q, db)\n"
        findings = findings_for({"core/decide.py": source}, self.checker)
        assert ("core/decide.py", 2, "engine-threading") in locations(findings)

    def test_driver_use_inside_engine_is_clean(self):
        source = "from .compile import compiled_evaluate_set\nrows = compiled_evaluate_set(q, db)\n"
        assert findings_for({"engine/dispatch.py": source}, self.checker) == []

    def test_hardcoded_mode_string_is_flagged(self):
        source = 'with engine_scope("compiled"):\n    pass\n'
        findings = findings_for({"workloads/batch.py": source}, self.checker)
        assert locations(findings) == [("workloads/batch.py", 1, "engine-threading")]

    def test_threaded_mode_variable_is_clean(self):
        source = "with engine_scope(task.engine):\n    pass\n"
        assert findings_for({"workloads/batch.py": source}, self.checker) == []

    def test_modes_module_may_name_modes(self):
        source = 'set_engine("compiled")\n'
        assert findings_for({"engine/modes.py": source}, self.checker) == []

    def test_service_may_not_call_engine_scope_even_threaded(self):
        # Outside service/, a *threaded* mode variable is fine; the
        # multi-tenant service layer may not flip the process-global mode
        # at all — one tenant's scope would leak into every other tenant.
        source = "with engine_scope(request.engine):\n    pass\n"
        findings = findings_for({"service/app.py": source}, self.checker)
        assert locations(findings) == [("service/app.py", 1, "engine-threading")]
        assert "Workspace(engine=...)" in findings[0].message

    def test_service_may_not_call_set_engine(self):
        source = "def handler(mode):\n    set_engine(mode)\n"
        findings = findings_for({"service/tenants.py": source}, self.checker)
        assert locations(findings) == [("service/tenants.py", 2, "engine-threading")]

    def test_service_workspace_pinning_is_clean(self):
        source = "ws = Workspace(engine=engine, workers=workers)\n"
        assert findings_for({"service/tenants.py": source}, self.checker) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    checker = SeededRandomnessChecker()

    def test_same_line_suppression_with_reason_is_honoured(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: allow[seeded-randomness] -- fixture noise\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_standalone_suppression_covers_the_next_line(self):
        source = (
            "import random\n"
            "# repro: allow[seeded-randomness] -- fixture noise\n"
            "x = random.random()\n"
        )
        assert findings_for({"mod.py": source}, self.checker) == []

    def test_suppression_without_reason_silences_nothing_and_is_reported(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: allow[seeded-randomness]\n"
        )
        findings = findings_for({"mod.py": source}, self.checker)
        rules = sorted(f.rule for f in findings)
        assert rules == ["seeded-randomness", "suppression-hygiene"]

    def test_unknown_rule_suppression_is_reported(self):
        source = "x = 1  # repro: allow[no-such-rule] -- because\n"
        findings = findings_for({"mod.py": source}, self.checker)
        assert [f.rule for f in findings] == ["suppression-hygiene"]
        assert "no-such-rule" in findings[0].message

    def test_suppression_only_covers_its_own_rule(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: allow[cache-discipline] -- wrong rule\n"
        )
        findings = run_checkers(
            Program.from_sources({"mod.py": source}),
            [SeededRandomnessChecker(), CacheDisciplineChecker()],
        )
        assert [f.rule for f in findings] == ["seeded-randomness"]

    def test_docstring_mentioning_the_syntax_is_not_a_suppression(self):
        source = '"""Suppress with ``# repro: allow[rule] -- reason``."""\nx = 1\n'
        assert findings_for({"mod.py": source}, self.checker) == []


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repro_package_is_clean(self):
        findings = analyze_paths([default_root()], ALL_CHECKERS)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_suppression_in_the_tree_carries_a_reason(self):
        program = Program.from_root(default_root())
        for module in program.modules:
            for suppression in module.suppressions:
                assert suppression.reason, (
                    f"{module.relpath}:{suppression.line} suppresses "
                    f"{suppression.rule} without a reason"
                )

    def test_cli_exits_zero_on_the_package(self, capsys):
        assert main([]) == 0

    def test_cli_exits_nonzero_on_a_violation(self, tmp_path: Path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "mod.py:2" in out and "[seeded-randomness]" in out

    def test_cli_single_file_and_rule_selection(self, tmp_path: Path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("_CACHE = {}\nimport random\nx = random.random()\n")
        assert main([str(bad), "--rule", "seeded-randomness"]) == 1
        out = capsys.readouterr().out
        assert "[seeded-randomness]" in out and "[cache-discipline]" not in out

    def test_cli_rejects_unknown_rule(self, tmp_path: Path):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--rule", "no-such-rule"])

    def test_list_rules_names_all_five(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for checker in ALL_CHECKERS:
            assert checker.name in out
