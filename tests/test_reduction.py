"""Tests for query reduction and satisfiability (Sections 4.2 and 7)."""

import pytest

from repro import Domain, parse_query
from repro.core import (
    condition_satisfiable,
    entailed_substitution,
    is_reduced,
    query_satisfiable,
    reduce_query,
    satisfiable_disjuncts,
)
from repro.datalog import Constant, Variable
from repro.errors import MalformedQueryError


class TestEntailedSubstitution:
    def test_variable_variable_equality(self):
        query = parse_query("q(x, sum(y)) :- p(x, y), p(z, y), x <= z, z <= x")
        substitution = entailed_substitution(query.disjuncts[0], Domain.RATIONALS)
        assert substitution.get(Variable("z")) == Variable("x") or substitution.get(
            Variable("x")
        ) == Variable("z")

    def test_pinning_over_integers(self):
        query = parse_query("q(x, count()) :- p(x), x > 3, x < 5")
        substitution = entailed_substitution(query.disjuncts[0], Domain.INTEGERS)
        assert substitution == {Variable("x"): Constant(4)}
        assert entailed_substitution(query.disjuncts[0], Domain.RATIONALS) == {}

    def test_unsatisfiable_condition_gives_empty_substitution(self):
        query = parse_query("q(x, count()) :- p(x), x > 3, x < 2")
        assert entailed_substitution(query.disjuncts[0], Domain.RATIONALS) == {}


class TestReduceQuery:
    def test_explicit_equality_is_eliminated(self):
        query = parse_query("q(x, sum(y)) :- p(x, z), y = z")
        reduced = reduce_query(query)
        # After reduction the body no longer contains an entailed equality.
        assert is_reduced(reduced)

    def test_constant_moves_into_head(self):
        query = parse_query("q(x, count()) :- p(x), x >= 2, x <= 2")
        reduced = reduce_query(query)
        assert reduced.head_terms == (Constant(2),)
        assert is_reduced(reduced)

    def test_aggregation_variable_never_becomes_constant(self):
        query = parse_query("q(x, sum(y)) :- p(x, y), y = 3")
        reduced = reduce_query(query)
        assert reduced.aggregate is not None
        assert all(isinstance(argument, Variable) for argument in reduced.aggregate.arguments)
        # The reduced query must still be semantically equivalent.
        from repro.engine import evaluate_aggregate
        from repro.datalog import parse_database

        database = parse_database("p(1, 3). p(1, 4). p(2, 3).")
        assert evaluate_aggregate(query, database) == evaluate_aggregate(reduced, database)

    def test_grouping_and_aggregation_variables_stay_disjoint(self):
        query = parse_query("q(x, sum(y)) :- p(x, y), x <= y, y <= x")
        reduced = reduce_query(query)
        assert reduced.grouping_variables().isdisjoint(set(reduced.aggregation_variables()))

    def test_reduction_preserves_semantics_on_random_databases(self, rng):
        from repro.engine import evaluate_aggregate
        from repro.workloads import QueryGenerator, QueryProfile

        query = parse_query("q(x, max(y)) :- p(x, y), s(z, w), z = x, w >= 2, w <= 2")
        reduced = reduce_query(query)
        generator = QueryGenerator(QueryProfile(predicates={"p": 2, "s": 2}), seed=5)
        for _ in range(20):
            database = generator.database()
            assert evaluate_aggregate(query, database) == evaluate_aggregate(reduced, database)

    def test_disjunctive_query_rejected(self):
        query = parse_query("q(x) :- p(x) ; r(x)")
        with pytest.raises(MalformedQueryError):
            reduce_query(query)

    def test_already_reduced_query_unchanged_semantically(self):
        query = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
        reduced = reduce_query(query)
        assert reduced.disjuncts[0].comparisons == query.disjuncts[0].comparisons

    def test_is_reduced_detects_pinning(self):
        query = parse_query("q(x, count()) :- p(x), x > 3, x < 5")
        assert not is_reduced(query, Domain.INTEGERS)
        assert is_reduced(query, Domain.RATIONALS)


class TestSatisfiability:
    def test_positive_query_satisfiable(self):
        assert query_satisfiable(parse_query("q(x) :- p(x, y), x < y"))

    def test_contradictory_comparisons(self):
        assert not query_satisfiable(parse_query("q(x) :- p(x), x < 3, x > 4"))

    def test_domain_dependent_satisfiability(self):
        query = parse_query("q(x) :- p(x, y), x < y, y < x")  # contradictory cycle
        assert not query_satisfiable(query)
        squeeze = parse_query("q(x) :- p(x, y), 0 < x, x < y, y < 2")
        assert query_satisfiable(squeeze, Domain.RATIONALS)
        assert not query_satisfiable(squeeze, Domain.INTEGERS)

    def test_negation_clash(self):
        query = parse_query("q(x) :- p(x, x), not p(x, x)")
        assert not query_satisfiable(query)

    def test_negation_clash_only_under_forced_equality(self):
        query = parse_query("q(x) :- p(x, y), not p(y, x)")
        # Satisfiable: choose x != y.
        assert query_satisfiable(query)
        forced = parse_query("q(x) :- p(x, y), not p(y, x), x <= y, y <= x")
        assert not query_satisfiable(forced)

    def test_quasilinear_negation_never_clashes(self):
        query = parse_query("q(x, sum(y)) :- p(x, y), not r(x, y)")
        assert query_satisfiable(query)

    def test_disjunctive_query_satisfiable_if_any_disjunct_is(self):
        query = parse_query("q(x) :- p(x), x < 1, x > 2 ; p(x), x > 0")
        assert query_satisfiable(query)
        assert len(satisfiable_disjuncts(query).disjuncts) == 1

    def test_condition_satisfiable_without_terms(self):
        query = parse_query("q(1) :- p(1)")
        assert condition_satisfiable(query.disjuncts[0])

    def test_integer_pinning_creates_clash(self):
        # Over Z, 0 < x < 2 and 0 < y < 2 force x = y = 1, so p(x) ∧ ¬p(y) clashes.
        query = parse_query("q(x) :- p(x), not p(y), y = x, x > 0, x < 2")
        assert not query_satisfiable(query, Domain.INTEGERS)
