"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Domain, parse_database, parse_query
from repro.store import reset_shared_store
from repro.workloads import QueryGenerator, QueryProfile, build_warehouse


@pytest.fixture(autouse=True)
def _isolated_verdict_store(monkeypatch, tmp_path):
    """Keep the process-wide verdict store from leaking across tests.

    The store is deliberately process-global (tenants share it), which is
    exactly wrong for test isolation: a verdict settled by one test would
    serve a later test's pair and silently change its decided-cell counts.
    Each test starts with a dropped singleton, and an inherited
    ``REPRO_STORE_PATH`` (e.g. the CI persistence leg) is redirected to a
    per-test file so cross-test sharing goes through explicit fixtures
    only.  Store tests that need a shared path set their own.
    """
    import os

    if os.environ.get("REPRO_STORE_PATH"):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "verdicts.sqlite3"))
    reset_shared_store()
    yield
    reset_shared_store()


@pytest.fixture
def rng():
    return random.Random(2001)


@pytest.fixture
def simple_db():
    return parse_database("p(1, 2). p(1, 3). p(2, 5). p(2, -1). r(3). s(1).")


@pytest.fixture
def unary_db():
    return parse_database("p(1). p(2). p(3). r(2).")


@pytest.fixture
def sum_query():
    return parse_query("q(x, sum(y)) :- p(x, y)")


@pytest.fixture
def max_query():
    return parse_query("q(x, max(y)) :- p(x, y)")


@pytest.fixture
def count_query():
    return parse_query("q(x, count()) :- p(x, y)")


@pytest.fixture
def negation_query():
    return parse_query("q(x, sum(y)) :- p(x, y), not r(y)")


@pytest.fixture
def warehouse():
    return build_warehouse(stores=3, products=5, sales_per_store=6, seed=11)


@pytest.fixture
def quasilinear_generator():
    profile = QueryProfile(
        predicates={"p": 2, "r": 1, "s": 2},
        aggregation_function="sum",
        quasilinear_only=True,
        max_comparisons=1,
    )
    return QueryGenerator(profile, seed=42)


@pytest.fixture(params=[Domain.RATIONALS, Domain.INTEGERS], ids=["Q", "Z"])
def domain(request):
    return request.param
