"""Differential tests of the columnar compiled engine (ISSUE 6).

The compiled engine — interned columnar stores plus per-plan code-generated
kernels, with an optional NumPy join path — must be observationally identical
to the planned interpreter and to the naive nested-loop reference on every
semantics the package exposes: ``evaluate_set`` / ``evaluate_bag_set`` /
``evaluate_aggregate``, Γ(q, D) as a multiset, the symbolic sweep verdicts,
and the counterexample witnesses the sweep path reports.  The tests here pin
that three-way agreement on the deterministic scenario catalogs and on
adversarial random instances, force both compiled back ends (the vectorized
path and the pure-python loop kernels), and check the cache-hygiene contract
of ``clear_evaluation_caches``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Domain
from repro.engine import (
    clear_evaluation_caches,
    clear_symbolic_caches,
    engine_scope,
    evaluate,
    kernel_cache_stats,
    naive_satisfying_assignments,
    satisfying_assignments,
    store_cache_stats,
)
from repro.engine.columnar import numpy_module
from repro.parallel.tasks import pair_check_tasks
from repro.workloads import (
    build_view_scenario,
    build_warehouse,
    decide_pairs,
    random_warehouse_database,
)

ENGINES = ("naive", "planned", "compiled")


def _clean() -> None:
    clear_evaluation_caches()
    clear_symbolic_caches()


def _evaluate_under(mode: str, query, database):
    with engine_scope(mode):
        return evaluate(query, database)


def _scenario_catalogs():
    """Every deterministic scenario catalog: (label, queries, database)."""
    warehouse = build_warehouse(stores=4, products=5, sales_per_store=10, seed=7)
    views = build_view_scenario(stores=3, products=4, sales_per_store=8, seed=11)
    return [
        ("warehouse", warehouse.queries, warehouse.database),
        ("views", views.queries, views.database),
        ("views-materialized", views.queries, views.materialized()),
    ]


@pytest.mark.parametrize(
    "label, queries, database",
    _scenario_catalogs(),
    ids=[label for label, _, _ in _scenario_catalogs()],
)
def test_scenario_catalogs_agree_across_engines(label, queries, database):
    _clean()
    for name, query in sorted(queries.items()):
        results = {mode: _evaluate_under(mode, query, database) for mode in ENGINES}
        assert results["naive"] == results["planned"], (label, name)
        assert results["naive"] == results["compiled"], (label, name)


def test_random_instances_agree_across_engines():
    """Adversarial random instances (empty relations, dangling returns,
    repeated and negative amounts): identical Γ multisets and identical
    derived semantics across all three engines."""
    _clean()
    queries = sorted(build_warehouse(stores=3, products=4, sales_per_store=6).queries.items())
    for seed in range(30):
        database = random_warehouse_database(seed)
        for name, query in queries:
            with engine_scope("naive"):
                naive_gamma = Counter(naive_satisfying_assignments(query, database))
            with engine_scope("planned"):
                planned_gamma = Counter(satisfying_assignments(query, database))
            with engine_scope("compiled"):
                compiled_gamma = Counter(satisfying_assignments(query, database))
            assert naive_gamma == planned_gamma, (seed, name)
            assert naive_gamma == compiled_gamma, (seed, name)
            results = {mode: _evaluate_under(mode, query, database) for mode in ENGINES}
            assert results["naive"] == results["planned"], (seed, name)
            assert results["naive"] == results["compiled"], (seed, name)


def _catalog_for_sweep() -> dict:
    """A catalog that exercises equivalent cells (full sweep), non-equivalent
    cells with concrete witnesses, and incomparable shapes."""
    from repro import parse_query
    from repro.workloads import renamed_copy

    audit = parse_query(
        "audit(s, count()) :- returns(s, p), premium_store(s) ; "
        "returns(s, p), discontinued(p)"
    )
    queries = {
        "audit": audit,
        "audit_renamed": renamed_copy(audit),
        "audit_weaker": parse_query(
            "audit(s, count()) :- returns(s, p), premium_store(s) ; returns(s, p)"
        ),
        "revenue_sum": parse_query("r(s, sum(a)) :- sales(s, p, a)"),
        "revenue_kept": parse_query(
            "r(s, sum(a)) :- sales(s, p, a), not returns(s, p)"
        ),
    }
    return queries


def _summarize(results) -> dict:
    return {
        pair: (cell.verdict, cell.method, cell.counterexample is not None)
        for pair, cell in results.items()
    }


def test_decide_pairs_parity_across_engines_and_workers():
    """The sweep path must produce identical verdicts, methods, and witness
    presence under the planned interpreter, the compiled engine, and the
    compiled engine sharded over two workers."""
    queries = _catalog_for_sweep()

    _clean()
    planned = decide_pairs(queries, seed=11, engine="planned")
    _clean()
    compiled = decide_pairs(queries, seed=11, engine="compiled")
    _clean()
    compiled_parallel = decide_pairs(queries, seed=11, workers=2, engine="compiled")

    assert _summarize(planned) == _summarize(compiled)
    assert _summarize(planned) == _summarize(compiled_parallel)

    # Witness exactness: every concrete witness the compiled sweep reports
    # must be confirmed by the naive oracle — the queries really differ on it.
    witnessed = 0
    for pair, cell in compiled.items():
        counterexample = cell.counterexample
        if counterexample is None or counterexample.database is None:
            continue
        witnessed += 1
        with engine_scope("naive"):
            left = evaluate(queries[pair[0]], counterexample.database)
            right = evaluate(queries[pair[1]], counterexample.database)
        assert left != right, pair
        assert left == counterexample.left_result, pair
        assert right == counterexample.right_result, pair
    assert witnessed > 0  # the catalog is built to produce concrete witnesses


@pytest.mark.skipif(numpy_module() is None, reason="NumPy unavailable")
def test_forced_vectorized_path_agrees(monkeypatch):
    """With the size threshold at zero every eligible plan takes the NumPy
    path; results must not change."""
    monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "0")
    _clean()  # drop stores built with the default threshold
    try:
        warehouse = build_warehouse(stores=4, products=5, sales_per_store=10, seed=7)
        for name, query in sorted(warehouse.queries.items()):
            naive = _evaluate_under("naive", query, warehouse.database)
            compiled = _evaluate_under("compiled", query, warehouse.database)
            assert naive == compiled, name
        for seed in range(10):
            database = random_warehouse_database(seed)
            for name, query in sorted(warehouse.queries.items()):
                assert _evaluate_under("naive", query, database) == _evaluate_under(
                    "compiled", query, database
                ), (seed, name)
    finally:
        monkeypatch.undo()
        _clean()  # drop stores built with threshold 0


def test_no_numpy_fallback_agrees(monkeypatch):
    """REPRO_NO_NUMPY=1 must route everything through the pure-python loop
    kernels without changing any result."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    _clean()
    try:
        warehouse = build_warehouse(stores=4, products=5, sales_per_store=10, seed=7)
        for name, query in sorted(warehouse.queries.items()):
            naive = _evaluate_under("naive", query, warehouse.database)
            compiled = _evaluate_under("compiled", query, warehouse.database)
            assert naive == compiled, name
    finally:
        monkeypatch.undo()
        _clean()


def test_clear_evaluation_caches_drops_kernels_and_stores():
    """Cache hygiene (ISSUE 6 satellite): ``clear_evaluation_caches`` must
    drop the compiled kernels and the columnar stores, observable as fresh
    compiles and store builds afterwards — otherwise long sessions leak."""
    warehouse = build_warehouse(stores=3, products=4, sales_per_store=6, seed=7)
    query = warehouse.queries["premium_kept_products"]

    _clean()
    baseline_kernels = kernel_cache_stats()["compiles"]
    baseline_stores = store_cache_stats()["builds"]

    with engine_scope("compiled"):
        evaluate(query, warehouse.database)
    after_first = kernel_cache_stats()
    assert after_first["compiles"] > baseline_kernels
    assert store_cache_stats()["builds"] > baseline_stores

    # A second evaluation reuses both caches: hits move, compiles do not.
    with engine_scope("compiled"):
        evaluate(query, warehouse.database)
    after_second = kernel_cache_stats()
    assert after_second["compiles"] == after_first["compiles"]

    # Clearing must force a re-compile and a store rebuild on the next call.
    clear_evaluation_caches()
    assert kernel_cache_stats()["entries"] == 0
    recompile_baseline = kernel_cache_stats()["compiles"]
    rebuild_baseline = store_cache_stats()["builds"]
    with engine_scope("compiled"):
        evaluate(query, warehouse.database)
    assert kernel_cache_stats()["compiles"] > recompile_baseline
    assert store_cache_stats()["builds"] > rebuild_baseline


def test_task_builders_capture_active_engine():
    """Parallel task builders snapshot the engine mode at build time so
    worker processes replay the exact engine the driver ran under."""
    queries = {
        name: query
        for name, query in list(
            sorted(build_warehouse(stores=2, products=3, sales_per_store=4).queries.items())
        )[:2]
    }
    for mode in ("planned", "compiled"):
        with engine_scope(mode):
            tasks = pair_check_tasks(
                queries,
                domain=Domain.RATIONALS,
                counterexample_trials=5,
                max_subsets=100,
                unknown_bound=None,
                normalize=True,
                seed=3,
                context=None,
            )
        assert tasks, mode
        assert all(task.engine == mode for task in tasks)
