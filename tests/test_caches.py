"""The runtime cache registry and the caches it must reset.

The contract under test is the one the ``cache-discipline`` checker
enforces statically: every module-level cache is registered under the
public clear entry that owns it, and calling that entry actually empties
the cache and zeroes its counters.  The ``_SETUP_MEMO`` leak test is the
counters-based proof the registration works end to end.
"""

from __future__ import annotations

import pytest

from repro.caches import (
    EXEMPT_CACHES,
    register_cache,
    registered_cache_keys,
    registered_caches,
)
from repro.engine import clear_evaluation_caches, clear_symbolic_caches
from repro.obs import REGISTRY
from repro.parallel import tasks


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_evaluation_caches()
    yield
    clear_evaluation_caches()


class TestRegistry:
    def test_core_caches_are_registered(self):
        keys = registered_cache_keys()
        assert "engine/compile.py:_KERNEL_CACHE" in keys
        assert "engine/columnar.py:_STORE_CACHE" in keys
        assert "parallel/tasks.py:_SETUP_MEMO" in keys
        assert any(key.startswith("engine/symbolic.py:") for key in keys)

    def test_registrations_and_exemptions_are_disjoint(self):
        overlap = registered_cache_keys() & set(EXEMPT_CACHES)
        assert not overlap

    def test_every_registration_names_a_known_clearer(self):
        for registration in registered_caches():
            assert registration.clearer in (
                "clear_evaluation_caches",
                "clear_symbolic_caches",
                "clear_service_caches",
            ), registration.key

    def test_every_exemption_carries_a_reason(self):
        for key, reason in EXEMPT_CACHES.items():
            assert reason.strip(), f"exemption {key} has no reason"

    def test_reregistration_replaces(self):
        first = register_cache("tests:_TMP", "clear_evaluation_caches", None)
        calls: list[str] = []
        second = register_cache("tests:_TMP", "clear_evaluation_caches", lambda: calls.append("x"))
        try:
            assert first != second
            clear_evaluation_caches()
            assert calls == ["x"]
        finally:
            from repro.caches import _REGISTRATIONS

            _REGISTRATIONS.pop("tests:_TMP", None)

    def test_clearers_only_run_their_own_caches(self):
        evaluation: list[str] = []
        symbolic: list[str] = []
        register_cache("tests:_EVAL", "clear_evaluation_caches", lambda: evaluation.append("e"))
        register_cache("tests:_SYM", "clear_symbolic_caches", lambda: symbolic.append("s"))
        try:
            clear_evaluation_caches()
            assert evaluation == ["e"] and symbolic == []
            clear_symbolic_caches()
            assert symbolic == ["s"]
        finally:
            from repro.caches import _REGISTRATIONS

            _REGISTRATIONS.pop("tests:_EVAL", None)
            _REGISTRATIONS.pop("tests:_SYM", None)


class TestSetupMemoLeak:
    """``_SETUP_MEMO`` must reset through ``clear_evaluation_caches`` —
    proven through its own counters, not by peeking alone."""

    def test_memo_counts_builds_and_hits(self):
        sentinel = object()
        key = ("test-leak", 1)
        assert tasks._memoized_setup(key, lambda: sentinel) is sentinel
        assert tasks._memoized_setup(key, lambda: object()) is sentinel
        assert REGISTRY.get("parallel.setup.builds") == 1
        assert REGISTRY.get("parallel.setup.hits") == 1

    def test_clear_evaluation_caches_drops_the_memo_and_its_counters(self):
        key = ("test-leak", 2)
        tasks._memoized_setup(key, lambda: object())
        tasks._memoized_setup(key, lambda: object())
        assert key in tasks._SETUP_MEMO
        assert REGISTRY.get("parallel.setup.builds") == 1

        clear_evaluation_caches()

        assert key not in tasks._SETUP_MEMO
        assert not tasks._SETUP_MEMO
        assert REGISTRY.get("parallel.setup.builds") == 0
        assert REGISTRY.get("parallel.setup.hits") == 0

        # a post-clear lookup rebuilds rather than resurrecting stale state
        rebuilt = tasks._memoized_setup(key, lambda: "fresh")
        assert rebuilt == "fresh"
        assert REGISTRY.get("parallel.setup.builds") == 1
        assert REGISTRY.get("parallel.setup.hits") == 0

    def test_memo_eviction_keeps_the_cap(self):
        for index in range(tasks._SETUP_MEMO_LIMIT + 8):
            tasks._memoized_setup(("test-cap", index), object)
        assert len(tasks._SETUP_MEMO) <= tasks._SETUP_MEMO_LIMIT
