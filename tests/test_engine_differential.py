"""Differential tests: the planned/indexed engine against the naive reference.

The naive nested-loop engine (``naive_satisfying_assignments``) is retained as
an executable specification of the Section 3 semantics.  These tests drive
randomized queries — covering every structural dimension the generator knows:
disjuncts, negation, comparisons, constants, repeated predicates — over
randomized databases and require the two engines to produce identical
Γ(q, D) multisets, identical set / bag-set results, and identical aggregate
results.
"""

from __future__ import annotations

import random
from collections import Counter
from fractions import Fraction

import pytest

from repro import Domain, parse_database, parse_query
from repro.core.counterexample import random_database
from repro.engine import (
    evaluate_aggregate,
    evaluate_bag_set,
    evaluate_set,
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.workloads import QueryGenerator, QueryProfile

#: One profile per structural corner of the fragment.
PROFILES = {
    "plain-sum": QueryProfile(aggregation_function="sum", allow_negation=False, max_disjuncts=1),
    "negation": QueryProfile(aggregation_function="max", max_negated_atoms=2),
    "disjunctive": QueryProfile(aggregation_function="count", max_disjuncts=3),
    "comparisons": QueryProfile(aggregation_function="min", max_comparisons=3),
    "non-aggregate": QueryProfile(aggregation_function=None, max_disjuncts=2),
    "quasilinear": QueryProfile(aggregation_function="sum", quasilinear_only=True),
    "cntd-negation": QueryProfile(aggregation_function="cntd", max_negated_atoms=1),
}


def _gamma_multiset(assignments) -> Counter:
    """Γ(q, D) as a multiset (order produced by the engines is irrelevant)."""
    return Counter(assignments)


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_engines_agree_on_random_workloads(profile_name):
    profile = PROFILES[profile_name]
    generator = QueryGenerator(profile, seed=sum(ord(c) for c in profile_name))
    rng = random.Random(2001)
    values = [-2, -1, 0, 1, 2, 5]
    for round_index in range(25):
        query = generator.query(f"q{round_index}")
        database = random_database(dict(profile.predicates), values, rng, max_facts=10)

        naive = naive_satisfying_assignments(query, database)
        planned = satisfying_assignments(query, database)
        assert _gamma_multiset(naive) == _gamma_multiset(planned), (
            f"Γ mismatch for {query} over {database}"
        )

        # The derived semantics must agree as well (they are all folds of Γ,
        # but evaluate_* run through the memoized path).
        assert evaluate_set(query, database) == {
            a.values_of(query.head_terms) for a in naive
        }
        assert evaluate_bag_set(query, database) == Counter(
            a.values_of(query.head_terms) for a in naive
        )
        if query.is_aggregate:
            from repro.aggregates.functions import get_function

            function = get_function(query.aggregate.function)
            expected: dict = {}
            groups: dict = {}
            for assignment in naive:
                groups.setdefault(assignment.values_of(query.head_terms), []).append(
                    assignment.values_of(query.aggregation_variables())
                )
            for key, bag in groups.items():
                expected[key] = function.apply(bag)
            assert evaluate_aggregate(query, database) == expected


def test_engines_agree_on_equality_defined_variables():
    rng = random.Random(7)
    query = parse_query("q(x, z, w) :- p(x, y), z = y, w = 3, y >= 0")
    for _ in range(20):
        database = random_database({"p": 2}, [-1, 0, 1, 2, 3], rng, max_facts=8)
        assert _gamma_multiset(naive_satisfying_assignments(query, database)) == _gamma_multiset(
            satisfying_assignments(query, database)
        )


def test_engines_agree_on_fractional_values():
    query = parse_query("q(x, sum(y)) :- p(x, y), y > 1/2")
    database = parse_database("p(1, 1/2). p(1, 3/4). p(2, 2). p(2, 1/4).")
    naive = naive_satisfying_assignments(query, database)
    planned = satisfying_assignments(query, database)
    assert _gamma_multiset(naive) == _gamma_multiset(planned)
    assert evaluate_aggregate(query, database) == {(1,): Fraction(3, 4), (2,): 2}


def test_memoized_results_are_stable_copies():
    query = parse_query("q(x) :- p(x)")
    database = parse_database("p(1). p(2).")
    first = satisfying_assignments(query, database)
    first.append("sentinel")  # type: ignore[arg-type]
    second = satisfying_assignments(query, database)
    assert "sentinel" not in second
    assert len(second) == 2
