"""Tests for the order-constraint solver (ComparisonSystem)."""

from fractions import Fraction

import pytest

from repro.datalog import Comparison, ComparisonOp, Constant, Variable
from repro.domains import Domain
from repro.errors import UnsatisfiableOrderingError
from repro.orderings import ComparisonSystem

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def cmp(left, op, right):
    return Comparison(left, ComparisonOp.from_symbol(op), right)


class TestSatisfiability:
    def test_empty_system_is_satisfiable(self, domain):
        assert ComparisonSystem((), domain).is_satisfiable()

    def test_simple_chain(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", Z)], domain)
        assert system.is_satisfiable()

    def test_cycle_is_unsatisfiable(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", X)], domain)
        assert not system.is_satisfiable()

    def test_strict_cycle_through_equality(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "=", X)], domain)
        assert not system.is_satisfiable()

    def test_dense_vs_discrete_gap(self):
        # 0 < y < z < 2: satisfiable over Q, unsatisfiable over Z (paper, Sec. 3.2).
        comparisons = [cmp(Constant(0), "<", Y), cmp(Y, "<", Z), cmp(Z, "<", Constant(2))]
        assert ComparisonSystem(comparisons, Domain.RATIONALS).is_satisfiable()
        assert not ComparisonSystem(comparisons, Domain.INTEGERS).is_satisfiable()

    def test_single_unit_gap_over_integers(self):
        comparisons = [cmp(Constant(0), "<", Y), cmp(Y, "<", Constant(2))]
        assert ComparisonSystem(comparisons, Domain.INTEGERS).is_satisfiable()

    def test_contradictory_constants(self, domain):
        system = ComparisonSystem([cmp(Constant(3), "<", Constant(1))], domain)
        assert not system.is_satisfiable()

    def test_disequality_satisfiable(self, domain):
        assert ComparisonSystem([cmp(X, "!=", Y)], domain).is_satisfiable()

    def test_disequality_with_forced_equality(self, domain):
        system = ComparisonSystem([cmp(X, "<=", Y), cmp(Y, "<=", X), cmp(X, "!=", Y)], domain)
        assert not system.is_satisfiable()

    def test_disequality_squeezed_over_integers(self):
        # 0 <= x <= 1 with x != 0 and x != 1 is unsatisfiable over Z.
        comparisons = [
            cmp(Constant(0), "<=", X),
            cmp(X, "<=", Constant(1)),
            cmp(X, "!=", Constant(0)),
            cmp(X, "!=", Constant(1)),
        ]
        assert not ComparisonSystem(comparisons, Domain.INTEGERS).is_satisfiable()
        assert ComparisonSystem(comparisons, Domain.RATIONALS).is_satisfiable()


class TestEntailment:
    def test_transitive_entailment(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", Z)], domain)
        assert system.entails(cmp(X, "<", Z))
        assert system.entails(cmp(X, "!=", Z))
        assert not system.entails(cmp(Z, "<", X))

    def test_integer_pinning_entails_equality(self):
        system = ComparisonSystem(
            [cmp(Constant(0), "<", X), cmp(X, "<", Constant(2))], Domain.INTEGERS
        )
        assert system.entails(cmp(X, "=", Constant(1)))

    def test_no_pinning_over_rationals(self):
        system = ComparisonSystem(
            [cmp(Constant(0), "<", X), cmp(X, "<", Constant(2))], Domain.RATIONALS
        )
        assert not system.entails(cmp(X, "=", Constant(1)))

    def test_entailed_relation(self, domain):
        system = ComparisonSystem([cmp(X, "<=", Y), cmp(Y, "<=", X)], domain)
        assert system.entailed_relation(X, Y) is ComparisonOp.EQ
        system = ComparisonSystem([cmp(X, "<", Y)], domain)
        assert system.entailed_relation(X, Y) is ComparisonOp.LT
        assert system.entailed_relation(Y, X) is ComparisonOp.GT
        system = ComparisonSystem([cmp(X, "<=", Y)], domain)
        assert system.entailed_relation(X, Y) is None

    def test_entails_from_disequality_and_le(self, domain):
        system = ComparisonSystem([cmp(X, "<=", Y), cmp(X, "!=", Y)], domain)
        assert system.entails(cmp(X, "<", Y))

    def test_integer_strictness_strengthens_bounds(self):
        # x < y over Z entails x <= y - 1, i.e. x + 1 <= y; check via x < y, y < 3 => x < 2,
        # in fact x <= 1 so x < 2 and even x != 2.
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", Constant(3))], Domain.INTEGERS)
        assert system.entails(cmp(X, "<", Constant(2)))
        assert system.entails(cmp(X, "<=", Constant(1)))

    def test_rational_strictness_does_not_overshoot(self):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", Constant(3))], Domain.RATIONALS)
        assert system.entails(cmp(X, "<", Constant(3)))
        assert not system.entails(cmp(X, "<=", Constant(1)))

    def test_is_complete_ordering(self, domain):
        complete = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", Constant(3))], domain)
        assert complete.is_complete_ordering_of([X, Y, Constant(3)])
        partial = ComparisonSystem([cmp(X, "<", Constant(3)), cmp(Y, "<", Constant(3))], domain)
        assert not partial.is_complete_ordering_of([X, Y, Constant(3)])

    def test_unsatisfiable_is_not_complete_ordering(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y), cmp(Y, "<", X)], domain)
        assert not system.is_complete_ordering_of([X, Y])


class TestReductionHelpers:
    def test_entailed_equalities(self, domain):
        system = ComparisonSystem([cmp(X, "<=", Y), cmp(Y, "<=", X), cmp(Z, "<", X)], domain)
        pairs = system.entailed_equalities()
        assert any({X, Y} == {a, b} for a, b in pairs)

    def test_pinned_constants_over_integers(self):
        system = ComparisonSystem(
            [cmp(Constant(3), "<", X), cmp(X, "<", Constant(5))], Domain.INTEGERS
        )
        assert system.pinned_constants() == {X: 4}

    def test_pinned_constants_explicit_equality(self, domain):
        system = ComparisonSystem([cmp(X, "=", Constant(7))], domain)
        assert system.pinned_constants() == {X: 7}

    def test_pinned_constants_chain_over_integers(self):
        system = ComparisonSystem(
            [cmp(Constant(0), "<", X), cmp(X, "<", Y), cmp(Y, "<", Constant(3))],
            Domain.INTEGERS,
        )
        assert system.pinned_constants() == {X: 1, Y: 2}

    def test_no_pinning_over_rationals(self):
        system = ComparisonSystem(
            [cmp(Constant(3), "<", X), cmp(X, "<", Constant(5))], Domain.RATIONALS
        )
        assert system.pinned_constants() == {}


class TestSatisfyingAssignment:
    def test_assignment_respects_constraints(self, domain):
        comparisons = [cmp(X, "<", Y), cmp(Y, "<=", Constant(4)), cmp(X, ">", Constant(-2))]
        system = ComparisonSystem(comparisons, domain)
        assignment = system.satisfying_assignment()
        for comparison in comparisons:
            left = assignment.get(comparison.left, getattr(comparison.left, "value", None))
            right = assignment.get(comparison.right, getattr(comparison.right, "value", None))
            assert comparison.op.holds(Fraction(left), Fraction(right))

    def test_assignment_maps_constants_to_themselves(self, domain):
        system = ComparisonSystem([cmp(X, ">", Constant(3))], domain)
        assignment = system.satisfying_assignment()
        assert assignment[Constant(3)] == 3
        assert Fraction(assignment[X]) > 3

    def test_integer_assignment_is_integral(self):
        system = ComparisonSystem(
            [cmp(Constant(0), "<", X), cmp(X, "<", Y), cmp(Y, "<", Constant(5))],
            Domain.INTEGERS,
        )
        assignment = system.satisfying_assignment()
        assert all(isinstance(value, int) for value in assignment.values())

    def test_dense_gap_assignment(self):
        system = ComparisonSystem(
            [cmp(Constant(0), "<", X), cmp(X, "<", Constant(1))], Domain.RATIONALS
        )
        assignment = system.satisfying_assignment()
        assert 0 < Fraction(assignment[X]) < 1

    def test_unsatisfiable_raises(self, domain):
        system = ComparisonSystem([cmp(X, "<", X)], domain)
        with pytest.raises(UnsatisfiableOrderingError):
            system.satisfying_assignment()

    def test_disequality_respected(self, domain):
        system = ComparisonSystem([cmp(X, "!=", Y), cmp(X, "<=", Y)], domain)
        assignment = system.satisfying_assignment()
        assert assignment[X] != assignment[Y]


class TestIncrementalApi:
    def test_add_and_extend_clear_cache(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y)], domain)
        assert system.is_satisfiable()
        system.add(cmp(Y, "<", X))
        assert not system.is_satisfiable()

    def test_with_extra_does_not_mutate(self, domain):
        system = ComparisonSystem([cmp(X, "<", Y)], domain)
        extended = system.with_extra([cmp(Y, "<", X)])
        assert system.is_satisfiable()
        assert not extended.is_satisfiable()

    def test_terms_and_variables(self, domain):
        system = ComparisonSystem([cmp(X, "<", Constant(3))], domain)
        assert system.terms() == {X, Constant(3)}
        assert system.variables() == {X}
