"""The kernel-source verifier and its REPRO_VERIFY_KERNELS wiring.

Two directions: every kernel the compiled engine actually generates across
the scenario catalogs passes verification (and the ``engine.kernel.verified``
counter proves verification ran, once per compile, never on the warm path);
and hostile kernel sources — imports, dunder access, names outside the
generated vocabulary, namespace injection — are rejected.
"""

from __future__ import annotations

import pytest

from repro import evaluate, parse_query
from repro.analysis import verify_kernel_source
from repro.engine import clear_evaluation_caches, engine_scope
from repro.engine.compile import (
    _KERNEL_CACHE,
    kernel_cache_stats,
    kernel_verification_enabled,
)
from repro.errors import KernelVerificationError
from repro.obs import REGISTRY
from repro.workloads import build_warehouse
from repro.workloads.scenarios import build_view_scenario


@pytest.fixture
def verified_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_KERNELS", "1")
    clear_evaluation_caches()
    yield
    clear_evaluation_caches()


GOOD_KERNEL = (
    "def _kernel(store):\n"
    "    out = []\n"
    "    _append = out.append\n"
    "    _lo0, _hi0 = store.bounds('p')\n"
    "    for _row0 in store.rows('p'):\n"
    "        _v0 = _row0[0]\n"
    "        if not _v0 > _c0:\n"
    "            continue\n"
    "        _append((_v0, _row0[1]))\n"
    "    return out\n"
)


class TestGeneratedKernelsVerify:
    def test_warehouse_catalog_kernels_verify(self, verified_kernels):
        scenario = build_warehouse(stores=3, products=5, sales_per_store=6, seed=11)
        with engine_scope("compiled"):
            scenario.evaluate_all()
        stats = kernel_cache_stats()
        assert stats["compiles"] > 0
        assert REGISTRY.get("engine.kernel.verified") == stats["compiles"]

    def test_view_scenario_kernels_verify(self, verified_kernels):
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=5, seed=7)
        database = scenario.materialized()
        with engine_scope("compiled"):
            for query in scenario.queries.values():
                evaluate(query, database)
        stats = kernel_cache_stats()
        assert stats["compiles"] > 0
        assert REGISTRY.get("engine.kernel.verified") == stats["compiles"]

    def test_every_cached_kernel_source_reverifies_standalone(self, verified_kernels):
        scenario = build_warehouse(stores=3, products=5, sales_per_store=6, seed=11)
        with engine_scope("compiled"):
            scenario.evaluate_all()
        assert _KERNEL_CACHE
        for kernel in _KERNEL_CACHE.values():
            verify_kernel_source(kernel._source)

    def test_warm_path_skips_verification(self, verified_kernels):
        query = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
        from repro import parse_database

        database = parse_database("p(1, 2). p(1, 3). p(2, 5).")
        with engine_scope("compiled"):
            evaluate(query, database)
            verified = REGISTRY.get("engine.kernel.verified")
            assert verified == kernel_cache_stats()["compiles"]
            evaluate(query, database)
        assert REGISTRY.get("engine.kernel.verified") == verified
        assert kernel_cache_stats()["hits"] > 0

    def test_verification_is_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_KERNELS", raising=False)
        assert not kernel_verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY_KERNELS", "0")
        assert not kernel_verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY_KERNELS", "1")
        assert kernel_verification_enabled()


class TestHostileKernelsRejected:
    def test_the_reference_kernel_is_accepted(self):
        verify_kernel_source(GOOD_KERNEL, {"_c0": 3, "_op0": None})

    @pytest.mark.parametrize(
        "source",
        [
            # an import smuggled into the body
            "def _kernel(store):\n    import os\n    return out\n",
            # __import__ is not an allowed name
            "def _kernel(store):\n    _v0 = __import__('os')\n    return out\n",
            # dunder attribute access
            "def _kernel(store):\n    _v0 = store.__class__\n    return out\n",
            # attribute outside the store API
            "def _kernel(store):\n    _v0 = store.relations\n    return out\n",
            # name outside the generated vocabulary
            "def _kernel(store):\n    _v0 = open('x')\n    return out\n",
            "def _kernel(store):\n    evil = 1\n    return out\n",
            # returning anything but out
            "def _kernel(store):\n    return store\n",
            # a second top-level statement
            "def _kernel(store):\n    return out\nx = 1\n",
            # wrong function name / signature
            "def kernel(store):\n    return out\n",
            "def _kernel(store, extra):\n    return out\n",
            # disallowed statement and expression forms
            "def _kernel(store):\n    while store:\n        pass\n    return out\n",
            "def _kernel(store):\n    _v0 = [r for r in store.rows('p')]\n    return out\n",
            "def _kernel(store):\n    _v0 = _c0 + _c1\n    return out\n",
            "def _kernel(store):\n    _v0 = -1\n    return out\n",
            # exec/eval by name
            "def _kernel(store):\n    exec('1')\n    return out\n",
            # calling with keywords
            "def _kernel(store):\n    _rows0 = store.rows(name='p')\n    return out\n",
        ],
    )
    def test_hostile_source_is_rejected(self, source):
        with pytest.raises(KernelVerificationError):
            verify_kernel_source(source)

    def test_unparseable_source_is_rejected(self):
        with pytest.raises(KernelVerificationError):
            verify_kernel_source("def _kernel(store:\n")

    def test_namespace_injection_is_rejected(self):
        with pytest.raises(KernelVerificationError):
            verify_kernel_source(GOOD_KERNEL, {"os": object()})
