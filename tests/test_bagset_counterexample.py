"""Tests for bag-set/set semantics equivalence and the counterexample search."""

import random

import pytest

from repro import Domain, parse_database, parse_query
from repro.core import (
    as_count_query,
    bag_set_equivalent,
    enumerate_databases,
    exhaustive_counterexample,
    find_counterexample,
    set_equivalent,
    value_pool,
)
from repro.engine import evaluate_bag_set, evaluate_set
from repro.errors import MalformedQueryError


class TestCountQueryReduction:
    def test_as_count_query_shape(self):
        query = parse_query("q(x) :- p(x, y), not r(y)")
        count_query = as_count_query(query)
        assert count_query.is_aggregate
        assert count_query.aggregate_function == "count"
        assert count_query.head_terms == query.head_terms
        assert count_query.disjuncts == query.disjuncts

    def test_as_count_query_rejects_aggregates(self):
        with pytest.raises(MalformedQueryError):
            as_count_query(parse_query("q(x, sum(y)) :- p(x, y)"))

    def test_count_query_matches_bag_set_semantics_pointwise(self):
        query = parse_query("q(x) :- p(x, y), not r(y)")
        count_query = as_count_query(query)
        database = parse_database("p(1, 2). p(1, 3). p(2, 5). r(3).")
        from repro.engine import evaluate_aggregate

        counts = evaluate_aggregate(count_query, database)
        bag = evaluate_bag_set(query, database)
        assert counts == dict(bag)


class TestBagSetEquivalence:
    def test_projection_not_bag_set_equivalent(self):
        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        assert set_equivalent(first, second).equivalent
        assert not bag_set_equivalent(first, second).equivalent

    def test_duplicate_disjunct_not_bag_set_equivalent(self):
        first = parse_query("q(x) :- p(x)")
        second = parse_query("q(x) :- p(x) ; p(x)")
        assert set_equivalent(first, second).equivalent
        assert not bag_set_equivalent(first, second).equivalent

    def test_renaming_is_bag_set_equivalent(self):
        first = parse_query("q(x) :- p(x, y), not r(y)")
        second = parse_query("q(x) :- p(x, z), not r(z)")
        assert bag_set_equivalent(first, second).equivalent

    def test_both_routes_agree(self):
        pairs = [
            ("q(x) :- p(x, y)", "q(x) :- p(x, y), p(x, z)"),
            ("q(x) :- p(x, y), not r(y)", "q(x) :- p(x, z), not r(z)"),
            ("q(x) :- p(x, y), y > 0", "q(x) :- p(x, y), y >= 0"),
        ]
        for first_text, second_text in pairs:
            first, second = parse_query(first_text), parse_query(second_text)
            via_count = bag_set_equivalent(first, second, via_count_queries=True)
            direct = bag_set_equivalent(first, second, via_count_queries=False)
            assert via_count.equivalent == direct.equivalent

    def test_bag_set_equivalence_rejects_aggregates(self):
        with pytest.raises(MalformedQueryError):
            bag_set_equivalent(
                parse_query("q(x, sum(y)) :- p(x, y)"), parse_query("q(x, sum(y)) :- p(x, y)")
            )

    def test_set_equivalence_with_negation(self):
        first = parse_query("q(x) :- p(x), not r(x)")
        second = parse_query("q(x) :- p(x)")
        assert not set_equivalent(first, second).equivalent


class TestCounterexampleSearch:
    def test_finds_distinguishing_database(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        witness = find_counterexample(first, second, rng=random.Random(1))
        assert witness is not None
        from repro.engine import evaluate_aggregate

        assert evaluate_aggregate(first, witness) != evaluate_aggregate(second, witness)

    def test_no_counterexample_for_equivalent_queries(self):
        first = parse_query("q(x, max(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, max(y)) :- p(x, y), 0 < y")
        assert find_counterexample(first, second, trials=150, rng=random.Random(2)) is None

    def test_bag_set_semantics_counterexample(self):
        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        witness = find_counterexample(first, second, semantics="bag-set", rng=random.Random(3))
        assert witness is not None
        assert evaluate_bag_set(first, witness) != evaluate_bag_set(second, witness)
        assert evaluate_set(first, witness) == evaluate_set(second, witness)

    def test_value_pool_contains_query_constants_and_neighbours(self):
        first = parse_query("q(x) :- p(x), x > 7")
        second = parse_query("q(x) :- p(x), x > 7")
        pool = value_pool(first, second, Domain.INTEGERS)
        assert 7 in pool and 8 in pool and 6 in pool

    def test_integer_domain_respected(self):
        first = parse_query("q(x, count()) :- p(x), x > 0, x < 2")
        second = parse_query("q(x, count()) :- p(x), x = 1")
        assert find_counterexample(first, second, domain=Domain.INTEGERS, trials=200) is None
        witness = find_counterexample(
            first, second, domain=Domain.RATIONALS, trials=500, rng=random.Random(5)
        )
        assert witness is not None

    def test_exhaustive_oracle_finds_small_witness(self):
        first = parse_query("q(count()) :- p(y)")
        second = parse_query("q(count()) :- p(y), not r(y)")
        witness = exhaustive_counterexample(first, second, values=[0], max_facts=2)
        assert witness is not None and len(witness) <= 2

    def test_exhaustive_oracle_confirms_equivalence_over_pool(self):
        first = parse_query("q(max(y)) :- p(y) ; p(y), p(z)")
        second = parse_query("q(max(y)) :- p(y)")
        assert exhaustive_counterexample(first, second, values=[0, 1]) is None

    def test_enumerate_databases_counts(self):
        databases = list(enumerate_databases({"p": 1}, [0, 1]))
        # Subsets of {p(0), p(1)}: 4 databases.
        assert len(databases) == 4

    def test_queries_without_predicates(self):
        first = parse_query("q(1) :- 1 < 2")
        second = parse_query("q(1) :- 2 < 3")
        assert find_counterexample(first, second) is None
