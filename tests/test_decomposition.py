"""Tests for database decompositions and the decomposition principles
(Sections 5 and 6)."""

import pytest

from repro import parse_database, parse_query
from repro.aggregates import get_function
from repro.core import (
    decomposition,
    decomposition_principle_holds,
    direct_aggregate,
    extend_database,
    recombine_group,
    recombine_idempotent,
    verify_decomposition,
)
from repro.core.decomposition import assignment_database
from repro.datalog import Database
from repro.engine import group_assignments
from repro.errors import ReproError


@pytest.fixture
def queries():
    first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
    second = parse_query("q(x, sum(y)) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0")
    return first, second


@pytest.fixture
def database():
    return parse_database("p(1, 2). p(1, 3). p(1, -1). p(2, 5). r(3). r(9).")


class TestExtendDatabase:
    def test_fixpoint_adds_blocking_negated_facts(self):
        first = parse_query("q(x, count()) :- p(x, y), not r(y)")
        second = parse_query("q(x, count()) :- p(x, y), not r(y)")
        full = parse_database("p(1, 2). r(2).")
        base = parse_database("p(1, 2).")
        extended = extend_database(base, first, second, full)
        # The assignment x=1, y=2 satisfies q over the base but not over the
        # full database (r(2) blocks it); the procedure must add r(2).
        assert extended.contains("r", (2,))

    def test_no_additions_when_nothing_blocks(self):
        first = parse_query("q(x, count()) :- p(x, y), not r(y)")
        full = parse_database("p(1, 2). r(5).")
        base = parse_database("p(1, 2).")
        assert extend_database(base, first, first, full) == base

    def test_extension_stays_within_full_database(self, queries, database):
        first, second = queries
        base = parse_database("p(1, 3).")
        extended = extend_database(base, first, second, database)
        assert extended.issubset(database)

    def test_cascading_extension(self):
        # Adding one fact enables a new assignment whose negated atom forces another.
        first = parse_query("q(x, count()) :- p(x, y), not p(y, x)")
        full = parse_database("p(1, 2). p(2, 1). p(1, 1).")
        base = parse_database("p(1, 2).")
        extended = extend_database(base, first, first, full)
        assert extended.contains("p", (2, 1))


class TestDecompositionConstruction:
    def test_assignment_database(self, queries, database):
        first, _ = queries
        assignments = group_assignments(first, database)[(1,)]
        for assignment in assignments:
            part = assignment_database(first, assignment)
            assert part.issubset(database)
            assert len(part) == 1

    def test_decomposition_properties(self, queries, database):
        first, second = queries
        parts = decomposition(first, second, database, (1,))
        assert parts
        check = verify_decomposition(first, second, database, (1,), parts)
        assert check.sizes_ok
        assert check.assignments_cover
        assert check.intersections_ok
        assert check.is_decomposition

    def test_decomposition_for_every_group(self, queries, database):
        first, second = queries
        for group in group_assignments(first, database):
            parts = decomposition(first, second, database, group)
            assert verify_decomposition(first, second, database, group, parts).is_decomposition

    def test_parts_are_small(self, queries, database):
        first, second = queries
        from repro.datalog import term_size_of_pair

        bound = term_size_of_pair(first, second)
        for part in decomposition(first, second, database, (1,)):
            assert part.carrier_size <= bound

    def test_empty_group_has_empty_decomposition(self, queries, database):
        first, second = queries
        assert decomposition(first, second, database, (99,)) == []


class TestDecompositionPrinciples:
    def test_sum_recombination_inclusion_exclusion(self, queries, database):
        first, second = queries
        function = get_function("sum")
        parts = decomposition(first, second, database, (1,))
        direct = direct_aggregate(function, first, database, (1,))
        recombined = recombine_group(function, first, parts, (1,))
        assert direct == recombined

    def test_count_recombination(self, database):
        first = parse_query("q(x, count()) :- p(x, y), not r(y)")
        second = parse_query("q(x, count()) :- p(x, y)")
        function = get_function("count")
        parts = decomposition(first, second, database, (1,))
        assert direct_aggregate(function, first, database, (1,)) == recombine_group(
            function, first, parts, (1,)
        )

    def test_max_recombination_idempotent(self, database):
        first = parse_query("q(x, max(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, max(y)) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0")
        function = get_function("max")
        parts = decomposition(first, second, database, (1,))
        assert direct_aggregate(function, first, database, (1,)) == recombine_idempotent(
            function, first, parts, (1,)
        )

    def test_principle_holds_helper(self, queries, database):
        first, second = queries
        for group in group_assignments(first, database):
            assert decomposition_principle_holds(first, second, database, group)

    def test_idempotent_recombination_requires_idempotent_function(self, queries, database):
        first, second = queries
        function = get_function("sum")
        parts = decomposition(first, second, database, (1,))
        with pytest.raises(ReproError):
            recombine_idempotent(function, first, parts, (1,))

    def test_group_recombination_requires_group_function(self, database):
        first = parse_query("q(x, max(y)) :- p(x, y)")
        function = get_function("max")
        parts = decomposition(first, first, database, (1,))
        with pytest.raises(ReproError):
            recombine_group(function, first, parts, (1,))

    def test_principles_on_randomized_databases(self, rng):
        """Empirical version of Theorem 6.5's key step on random databases."""
        from repro.workloads import QueryGenerator, QueryProfile

        first = parse_query("q(x, parity) :- p(x, y), not r(y)")
        second = parse_query("q(x, parity) :- p(x, y), not r(y), s(x, x) ; p(x, y), not r(y)")
        generator = QueryGenerator(QueryProfile(predicates={"p": 2, "r": 1, "s": 2}), seed=17)
        for _ in range(10):
            database = generator.database(max_facts=8)
            for group in group_assignments(first, database):
                assert decomposition_principle_holds(first, second, database, group)


class TestLocalToGlobalTransfer:
    def test_locally_equivalent_queries_agree_on_larger_databases(self, rng):
        """Theorem 6.5, observed empirically: queries verified locally
        equivalent agree on databases with many more constants than τ."""
        from repro.core import local_equivalence
        from repro.engine import evaluate_aggregate
        from repro.workloads import QueryGenerator, QueryProfile

        first = parse_query("q(max(y)) :- p(y), not r(y)")
        second = parse_query("q(max(y)) :- p(y), not r(y) ; p(y), not r(y), p(y)")
        assert local_equivalence(first, second).equivalent
        generator = QueryGenerator(QueryProfile(predicates={"p": 1, "r": 1}), seed=23)
        for _ in range(25):
            database = generator.database(max_facts=14)
            assert evaluate_aggregate(first, database) == evaluate_aggregate(second, database)
