"""Tests for concrete query evaluation (Section 3 semantics)."""

from collections import Counter
from fractions import Fraction

import pytest

from repro import Domain, evaluate, evaluate_aggregate, evaluate_bag_set, evaluate_set, parse_database, parse_query
from repro.engine import group_assignments, results_equal, satisfying_assignments
from repro.errors import EvaluationError


class TestSatisfyingAssignments:
    def test_basic_join(self, simple_db):
        query = parse_query("q(x, y) :- p(x, y)")
        assignments = satisfying_assignments(query, simple_db)
        assert len(assignments) == 4

    def test_join_on_shared_variable(self):
        database = parse_database("p(1, 2). p(2, 3). p(3, 4).")
        query = parse_query("q(x, z) :- p(x, y), p(y, z)")
        results = evaluate_set(query, database)
        assert results == {(1, 3), (2, 4)}

    def test_negation_filters(self, simple_db):
        query = parse_query("q(x, y) :- p(x, y), not r(y)")
        results = evaluate_set(query, simple_db)
        assert (1, 3) not in results
        assert (1, 2) in results

    def test_comparisons_filter(self, simple_db):
        query = parse_query("q(x, y) :- p(x, y), y > 2")
        assert evaluate_set(query, simple_db) == {(1, 3), (2, 5)}

    def test_constants_in_atoms(self, simple_db):
        query = parse_query("q(y) :- p(1, y)")
        assert evaluate_set(query, simple_db) == {(2,), (3,)}

    def test_repeated_variable_in_atom(self):
        database = parse_database("p(1, 1). p(1, 2).")
        query = parse_query("q(x) :- p(x, x)")
        assert evaluate_set(query, database) == {(1,)}

    def test_equality_defined_variable(self, simple_db):
        query = parse_query("q(x, z) :- p(x, y), z = y")
        assert evaluate_set(query, simple_db) == evaluate_set(parse_query("q(x, y) :- p(x, y)"), simple_db)

    def test_equality_to_constant(self, simple_db):
        query = parse_query("q(x, z) :- p(x, y), z = 7")
        assert all(row[1] == 7 for row in evaluate_set(query, simple_db))

    def test_labels_record_disjuncts(self, simple_db):
        query = parse_query("q(x) :- p(x, y) ; p(x, y), y > 2")
        assignments = satisfying_assignments(query, simple_db)
        labels = {a.disjunct_index for a in assignments}
        assert labels == {0, 1}

    def test_empty_relation(self):
        query = parse_query("q(x) :- missing(x)")
        assert evaluate_set(query, parse_database("p(1).")) == set()


class TestSetAndBagSetSemantics:
    def test_projection_set_vs_bagset(self):
        database = parse_database("p(1, 2). p(1, 3). p(2, 4).")
        query = parse_query("q(x) :- p(x, y)")
        assert evaluate_set(query, database) == {(1,), (2,)}
        assert evaluate_bag_set(query, database) == Counter({(1,): 2, (2,): 1})

    def test_disjunct_multiplicity(self):
        database = parse_database("p(1).")
        query = parse_query("q(x) :- p(x) ; p(x)")
        assert evaluate_bag_set(query, database) == Counter({(1,): 2})
        assert evaluate_set(query, database) == {(1,)}

    def test_evaluate_dispatches_on_query_shape(self, simple_db):
        aggregate = parse_query("q(x, count()) :- p(x, y)")
        plain = parse_query("q(x) :- p(x, y)")
        assert isinstance(evaluate(aggregate, simple_db), dict)
        assert isinstance(evaluate(plain, simple_db), set)


class TestAggregateSemantics:
    def test_sum_groups(self, simple_db, sum_query):
        assert evaluate_aggregate(sum_query, simple_db) == {(1,): 5, (2,): 4}

    def test_count_groups(self, simple_db, count_query):
        assert evaluate_aggregate(count_query, simple_db) == {(1,): 2, (2,): 2}

    def test_max_groups(self, simple_db, max_query):
        assert evaluate_aggregate(max_query, simple_db) == {(1,): 3, (2,): 5}

    def test_avg_exact_fraction(self, simple_db):
        query = parse_query("q(x, avg(y)) :- p(x, y)")
        assert evaluate_aggregate(query, simple_db) == {(1,): Fraction(5, 2), (2,): 2}

    def test_cntd(self):
        database = parse_database("p(1, 2). p(1, 2). p(1, 3). p(2, 5).")
        query = parse_query("q(x, cntd(y)) :- p(x, y)")
        assert evaluate_aggregate(query, database) == {(1,): 2, (2,): 1}

    def test_top2(self, simple_db):
        query = parse_query("q(x, top2(y)) :- p(x, y)")
        assert evaluate_aggregate(query, simple_db) == {(1,): (3, 2), (2,): (5, -1)}

    def test_parity(self, simple_db):
        query = parse_query("q(x, parity) :- p(x, y)")
        assert evaluate_aggregate(query, simple_db) == {(1,): 0, (2,): 0}

    def test_prod(self):
        database = parse_database("p(1, 2). p(1, 3). p(2, 0). p(2, 7).")
        query = parse_query("q(x, prod(y)) :- p(x, y)")
        assert evaluate_aggregate(query, database) == {(1,): 6, (2,): 0}

    def test_empty_groups_do_not_appear(self, simple_db):
        query = parse_query("q(x, sum(y)) :- p(x, y), y > 100")
        assert evaluate_aggregate(query, simple_db) == {}

    def test_groups_with_negation(self, simple_db, negation_query):
        # r(3) removes y = 3 from group x = 1.
        assert evaluate_aggregate(negation_query, simple_db) == {(1,): 2, (2,): 4}

    def test_duplicate_disjuncts_double_count(self):
        database = parse_database("p(1, 2).")
        query = parse_query("q(x, sum(y)) :- p(x, y) ; p(x, y)")
        assert evaluate_aggregate(query, database) == {(1,): 4}

    def test_assignment_multiplicity_within_group(self):
        # Two assignments with the same aggregation value are both counted.
        database = parse_database("p(1, 2, 10). p(1, 3, 10).")
        query = parse_query("q(x, sum(v)) :- p(x, y, v)")
        assert evaluate_aggregate(query, database) == {(1,): 20}

    def test_grouping_by_constant_head_term(self):
        database = parse_database("p(1, 2). p(2, 3).")
        query = parse_query("q(7, sum(y)) :- p(x, y)")
        assert evaluate_aggregate(query, database) == {(7,): 5}

    def test_group_assignments_match_gamma(self, simple_db, sum_query):
        groups = group_assignments(sum_query, simple_db)
        assert set(groups) == {(1,), (2,)}
        assert len(groups[(1,)]) == 2

    def test_aggregate_on_non_aggregate_query_raises(self, simple_db):
        with pytest.raises(EvaluationError):
            evaluate_aggregate(parse_query("q(x) :- p(x, y)"), simple_db)

    def test_results_equal_requires_same_shape(self, simple_db, sum_query):
        with pytest.raises(EvaluationError):
            results_equal(sum_query, parse_query("q(x) :- p(x, y)"), simple_db)

    def test_results_equal(self, simple_db):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, sum(z)) :- p(x, z)")
        assert results_equal(first, second, simple_db)


class TestDisjunctiveAggregates:
    def test_union_of_disjuncts_under_count(self):
        database = parse_database("p(1, 2). r(1, 5).")
        query = parse_query("q(x, count()) :- p(x, y) ; r(x, y)")
        assert evaluate_aggregate(query, database) == {(1,): 2}

    def test_assignment_satisfying_two_disjuncts_counted_twice(self):
        database = parse_database("p(1, 2).")
        query = parse_query("q(x, count()) :- p(x, y) ; p(x, y), y > 0")
        assert evaluate_aggregate(query, database) == {(1,): 2}

    def test_max_unaffected_by_duplicate_disjuncts(self, simple_db):
        single = parse_query("q(x, max(y)) :- p(x, y)")
        double = parse_query("q(x, max(y)) :- p(x, y) ; p(x, y)")
        assert evaluate_aggregate(single, simple_db) == evaluate_aggregate(double, simple_db)
