"""Tests for conditions, query construction and classification."""

import pytest

from repro.datalog import (
    AggregateTerm,
    Comparison,
    ComparisonOp,
    Condition,
    Constant,
    Query,
    RelationalAtom,
    Variable,
    conjunctive_query,
    make_condition,
    term_size_of_pair,
)
from repro.errors import MalformedQueryError, UnsafeQueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def cond(*literals):
    return Condition(tuple(literals))


class TestCondition:
    def test_components(self):
        condition = cond(
            RelationalAtom("p", (X, Y)),
            RelationalAtom("r", (Y,), negated=True),
            Comparison(Y, ComparisonOp.GT, Constant(0)),
        )
        assert len(condition.positive_atoms) == 1
        assert len(condition.negated_atoms) == 1
        assert len(condition.comparisons) == 1
        assert condition.predicates() == {"p", "r"}
        assert condition.positive_predicates() == {"p"}
        assert condition.negated_predicates() == {"r"}
        assert not condition.is_positive

    def test_variables_constants_terms(self):
        condition = cond(RelationalAtom("p", (X, Constant(1))), Comparison(X, ComparisonOp.LT, Constant(2)))
        assert condition.variables() == {X}
        assert condition.constants() == {Constant(1), Constant(2)}
        assert condition.terms() == {X, Constant(1), Constant(2)}
        assert condition.variable_size == 1

    def test_safety_positive_atom(self):
        condition = cond(RelationalAtom("p", (X, Y)))
        assert condition.is_safe()

    def test_safety_violation(self):
        condition = cond(RelationalAtom("p", (X,)), Comparison(Y, ComparisonOp.GT, Constant(0)))
        assert not condition.is_safe()
        with pytest.raises(UnsafeQueryError):
            condition.check_safe()

    def test_safety_through_equality_chain(self):
        condition = cond(
            RelationalAtom("p", (X,)),
            Comparison(Y, ComparisonOp.EQ, X),
            Comparison(Z, ComparisonOp.EQ, Y),
        )
        assert condition.is_safe()

    def test_safety_via_constant_equality(self):
        condition = cond(RelationalAtom("p", (X,)), Comparison(Y, ComparisonOp.EQ, Constant(5)))
        assert condition.is_safe()

    def test_negated_only_variable_is_unsafe(self):
        condition = cond(RelationalAtom("p", (X,)), RelationalAtom("r", (Y,), negated=True))
        assert not condition.is_safe()

    def test_make_condition_checks_safety(self):
        with pytest.raises(UnsafeQueryError):
            make_condition([RelationalAtom("p", (X,)), RelationalAtom("r", (Y,), negated=True)])

    def test_substitute(self):
        condition = cond(RelationalAtom("p", (X, Y)), Comparison(X, ComparisonOp.LT, Y))
        substituted = condition.substitute({X: Constant(1)})
        assert substituted.positive_atoms[0].arguments == (Constant(1), Y)
        assert substituted.comparisons[0].left == Constant(1)

    def test_without_trivial_comparisons(self):
        condition = cond(
            RelationalAtom("p", (X,)),
            Comparison(X, ComparisonOp.EQ, X),
            Comparison(Constant(1), ComparisonOp.LT, Constant(2)),
            Comparison(X, ComparisonOp.LT, Constant(3)),
        )
        cleaned = condition.without_trivial_comparisons()
        assert len(cleaned.comparisons) == 1


class TestQueryConstruction:
    def test_simple_aggregate_query(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y))], AggregateTerm("sum", (Y,))
        )
        assert query.is_aggregate
        assert query.aggregate_function == "sum"
        assert query.grouping_variables() == {X}
        assert query.aggregation_variables() == (Y,)

    def test_missing_head_variable_rejected(self):
        with pytest.raises(MalformedQueryError):
            conjunctive_query("q", (X,), [RelationalAtom("p", (Y,))])

    def test_overlapping_grouping_and_aggregation_rejected(self):
        with pytest.raises(MalformedQueryError):
            conjunctive_query(
                "q", (X,), [RelationalAtom("p", (X,))], AggregateTerm("sum", (X,))
            )

    def test_unsafe_disjunct_rejected(self):
        with pytest.raises(UnsafeQueryError):
            Query(
                "q",
                (X,),
                (cond(RelationalAtom("p", (X,)), RelationalAtom("r", (Y,), negated=True)),),
            )

    def test_empty_body_rejected(self):
        with pytest.raises(MalformedQueryError):
            Query("q", (X,), ())

    def test_aggregate_term_requires_variables(self):
        with pytest.raises(MalformedQueryError):
            AggregateTerm("sum", (Constant(1),))  # type: ignore[arg-type]

    def test_aggregate_term_lowercases(self):
        assert AggregateTerm("SUM", (Y,)).function == "sum"


class TestQueryClassification:
    def test_conjunctive_and_positive(self):
        query = conjunctive_query("q", (X,), [RelationalAtom("p", (X, Y))])
        assert query.is_conjunctive
        assert query.is_positive

    def test_disjunctive(self):
        query = Query(
            "q",
            (X,),
            (cond(RelationalAtom("p", (X,))), cond(RelationalAtom("r", (X,)))),
        )
        assert not query.is_conjunctive

    def test_linear(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y)), RelationalAtom("r", (Y,))]
        )
        assert query.is_linear
        assert query.is_quasilinear

    def test_repeated_predicate_not_linear(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y)), RelationalAtom("p", (Y, X))]
        )
        assert not query.is_linear
        assert not query.is_quasilinear

    def test_quasilinear_with_negation(self):
        query = conjunctive_query(
            "q",
            (X,),
            [
                RelationalAtom("p", (X, Y)),
                RelationalAtom("r", (Y,), negated=True),
                RelationalAtom("r", (X,), negated=True),
            ],
        )
        assert query.is_quasilinear
        assert not query.is_linear  # not positive

    def test_predicate_both_positive_and_negated_not_quasilinear(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y)), RelationalAtom("p", (X, X), negated=True)]
        )
        assert not query.is_quasilinear

    def test_disjunctive_never_quasilinear(self):
        query = Query(
            "q",
            (X,),
            (cond(RelationalAtom("p", (X,))), cond(RelationalAtom("p", (X,)))),
        )
        assert not query.is_quasilinear


class TestQuerySizes:
    def test_variable_size_is_max_over_disjuncts(self):
        query = Query(
            "q",
            (X,),
            (
                cond(RelationalAtom("p", (X, Y)), RelationalAtom("p", (Y, Z))),
                cond(RelationalAtom("p", (X, X))),
            ),
        )
        assert query.variable_size == 3

    def test_term_size_counts_constants(self):
        query = conjunctive_query(
            "q",
            (X,),
            [RelationalAtom("p", (X, Y)), Comparison(Y, ComparisonOp.LT, Constant(5))],
        )
        assert query.term_size == 3

    def test_term_size_of_pair(self):
        first = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X,)), Comparison(X, ComparisonOp.GT, Constant(0))]
        )
        second = conjunctive_query(
            "q",
            (X,),
            [
                RelationalAtom("p", (X,)),
                RelationalAtom("r", (X, Y)),
                Comparison(X, ComparisonOp.GT, Constant(1)),
            ],
        )
        # Constants {0, 1} plus max variable size 2.
        assert term_size_of_pair(first, second) == 4

    def test_predicate_arities_consistency(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y)), RelationalAtom("p", (Y, X))]
        )
        assert query.predicate_arities() == {"p": 2}

    def test_predicate_arity_conflict_detected(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y)), RelationalAtom("p", (X,))]
        )
        with pytest.raises(MalformedQueryError):
            query.predicate_arities()


class TestQueryManipulation:
    def test_rename_variables(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y))], AggregateTerm("sum", (Y,))
        )
        renamed = query.rename_variables({Y: Z})
        assert renamed.aggregation_variables() == (Z,)
        assert renamed.disjuncts[0].positive_atoms[0].arguments == (X, Z)

    def test_standardize_apart(self):
        query = conjunctive_query("q", (X,), [RelationalAtom("p", (X, Y))])
        result = query.standardize_apart({X, Y})
        assert result.variables().isdisjoint(set()) or result.variables() != {X, Y}
        assert not (result.variables() & {X, Y}) or result.variables() == result.variables()
        assert {v.name for v in result.variables()}.isdisjoint({"x", "y"}) or True
        # The important property: no variable of the result collides with the input set.
        assert not ({X, Y} & result.variables())

    def test_without_aggregate(self):
        query = conjunctive_query(
            "q", (X,), [RelationalAtom("p", (X, Y))], AggregateTerm("sum", (Y,))
        )
        projection = query.without_aggregate()
        assert not projection.is_aggregate
        assert projection.head_terms == (X,)

    def test_str_round_trips_through_parser(self):
        from repro.datalog import parse_query

        query = conjunctive_query(
            "q",
            (X,),
            [RelationalAtom("p", (X, Y)), Comparison(Y, ComparisonOp.GE, Constant(0))],
            AggregateTerm("max", (Y,)),
        )
        reparsed = parse_query(str(query).replace(" :- ", " :- "))
        assert reparsed.head_terms == query.head_terms
        assert reparsed.aggregate == query.aggregate
