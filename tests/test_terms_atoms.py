"""Tests for terms, atoms and literals."""

from fractions import Fraction

import pytest

from repro.datalog.atoms import Comparison, ComparisonOp, GroundAtom, RelationalAtom
from repro.datalog.terms import (
    Constant,
    Variable,
    constants_of,
    make_term,
    make_terms,
    substitute_terms,
    variables_of,
)
from repro.errors import QuerySyntaxError


class TestTerms:
    def test_variable_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert hash(Variable("x")) == hash(Variable("x"))

    def test_variable_requires_name(self):
        with pytest.raises(QuerySyntaxError):
            Variable("")

    def test_constant_normalizes_floats(self):
        assert Constant(0.5).value == Fraction(1, 2)
        assert Constant(2.0).value == 2

    def test_constant_equality_across_representations(self):
        assert Constant(Fraction(4, 2)) == Constant(2)

    def test_make_term_dispatch(self):
        assert make_term("x") == Variable("x")
        assert make_term("3") == Constant(3)
        assert make_term("-2") == Constant(-2)
        assert make_term("1/2") == Constant(Fraction(1, 2))
        assert make_term(7) == Constant(7)
        assert make_term(Variable("z")) == Variable("z")

    def test_make_term_rejects_empty(self):
        with pytest.raises(QuerySyntaxError):
            make_term("   ")

    def test_make_terms(self):
        assert make_terms(["x", 1]) == (Variable("x"), Constant(1))

    def test_substitute_terms(self):
        mapping = {Variable("x"): Constant(1)}
        assert substitute_terms((Variable("x"), Variable("y"), Constant(2)), mapping) == (
            Constant(1),
            Variable("y"),
            Constant(2),
        )

    def test_variables_and_constants_of(self):
        terms = (Variable("x"), Constant(1), Variable("y"))
        assert variables_of(terms) == {Variable("x"), Variable("y")}
        assert constants_of(terms) == {Constant(1)}

    def test_term_predicates(self):
        assert Variable("x").is_variable and not Variable("x").is_constant
        assert Constant(1).is_constant and not Constant(1).is_variable


class TestRelationalAtom:
    def test_atom_basics(self):
        atom = RelationalAtom("p", (Variable("x"), Constant(3)))
        assert atom.arity == 2
        assert atom.is_positive
        assert not atom.is_ground
        assert atom.variables() == {Variable("x")}
        assert atom.constants() == {Constant(3)}

    def test_negation_round_trip(self):
        atom = RelationalAtom("p", (Variable("x"),))
        negated = atom.negate()
        assert negated.negated
        assert negated.positive() == atom
        assert negated.negate() == atom

    def test_substitute(self):
        atom = RelationalAtom("p", (Variable("x"), Variable("y")), negated=True)
        result = atom.substitute({Variable("x"): Constant(1)})
        assert result == RelationalAtom("p", (Constant(1), Variable("y")), negated=True)

    def test_ground_atom(self):
        atom = RelationalAtom("p", (Constant(1), Constant(2)))
        assert atom.is_ground

    def test_string_rendering(self):
        atom = RelationalAtom("p", (Variable("x"),), negated=True)
        assert str(atom) == "not p(x)"

    def test_empty_predicate_rejected(self):
        with pytest.raises(QuerySyntaxError):
            RelationalAtom("", (Variable("x"),))


class TestComparison:
    def test_operator_parsing(self):
        assert ComparisonOp.from_symbol("<=") is ComparisonOp.LE
        assert ComparisonOp.from_symbol("<>") is ComparisonOp.NE
        assert ComparisonOp.from_symbol("==") is ComparisonOp.EQ

    def test_unknown_operator(self):
        with pytest.raises(QuerySyntaxError):
            ComparisonOp.from_symbol("<<")

    def test_flip_and_negate(self):
        assert ComparisonOp.LT.flip() is ComparisonOp.GT
        assert ComparisonOp.LE.negate() is ComparisonOp.GT
        assert ComparisonOp.NE.negate() is ComparisonOp.EQ

    def test_holds(self):
        assert ComparisonOp.LT.holds(1, 2)
        assert not ComparisonOp.GE.holds(1, 2)
        assert ComparisonOp.NE.holds(1, 2)

    def test_comparison_flip_preserves_meaning(self):
        comparison = Comparison(Variable("x"), ComparisonOp.LT, Constant(3))
        flipped = comparison.flip()
        assert flipped.left == Constant(3) and flipped.op is ComparisonOp.GT

    def test_evaluate_ground(self):
        assert Comparison(Constant(1), ComparisonOp.LT, Constant(2)).evaluate_ground()
        assert not Comparison(Constant(2), ComparisonOp.LT, Constant(1)).evaluate_ground()

    def test_evaluate_ground_requires_constants(self):
        with pytest.raises(QuerySyntaxError):
            Comparison(Variable("x"), ComparisonOp.LT, Constant(1)).evaluate_ground()

    def test_is_equality(self):
        assert Comparison(Variable("x"), ComparisonOp.EQ, Constant(1)).is_equality
        assert not Comparison(Variable("x"), ComparisonOp.LE, Constant(1)).is_equality


class TestGroundAtom:
    def test_ground_atom_equality(self):
        assert GroundAtom("p", (1, 2)) == GroundAtom("p", (1, 2))
        assert GroundAtom("p", (1, 2)) != GroundAtom("p", (2, 1))

    def test_ground_atom_arity_and_str(self):
        atom = GroundAtom("edge", (1, 2))
        assert atom.arity == 2
        assert str(atom) == "edge(1, 2)"
