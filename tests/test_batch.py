"""Tests for the batched workload APIs (evaluate_many / equivalence_matrix)."""

import pytest

from repro import Verdict, parse_database, parse_query
from repro.engine import evaluate
from repro.workloads import (
    build_warehouse,
    equivalence_matrix,
    evaluate_many,
    format_equivalence_matrix,
)


class TestEvaluateMany:
    def test_matches_individual_evaluation(self, warehouse):
        results = evaluate_many(warehouse.queries, warehouse.database)
        assert set(results) == set(warehouse.queries)
        for name, query in warehouse.queries.items():
            assert results[name] == evaluate(query, warehouse.database)

    def test_scenario_convenience_method(self, warehouse):
        assert warehouse.evaluate_all() == evaluate_many(warehouse.queries, warehouse.database)

    def test_empty_catalog(self):
        assert evaluate_many({}, parse_database("p(1).")) == {}


class TestEquivalenceMatrix:
    def test_detects_equivalent_rewriting(self):
        queries = {
            "orig": parse_query("q(x, sum(y)) :- p(x, y), not r(x)"),
            "renamed": parse_query("q(x, sum(z)) :- p(x, z), not r(x)"),
            "weaker": parse_query("q(x, sum(y)) :- p(x, y)"),
        }
        results = equivalence_matrix(queries, counterexample_trials=100)
        assert set(results) == {("orig", "renamed"), ("orig", "weaker"), ("renamed", "weaker")}
        assert results[("orig", "renamed")].verdict is Verdict.EQUIVALENT
        assert results[("orig", "weaker")].verdict is Verdict.NOT_EQUIVALENT
        assert results[("renamed", "weaker")].verdict is Verdict.NOT_EQUIVALENT

    def test_mixed_shapes_are_incomparable_not_an_error(self):
        queries = {
            "agg": parse_query("q(x, sum(y)) :- p(x, y)"),
            "plain": parse_query("q(x) :- p(x, y)"),
        }
        results = equivalence_matrix(queries)
        result = results[("agg", "plain")]
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.method == "incomparable shapes"

    def test_formatting(self):
        queries = {
            "a": parse_query("q(x) :- p(x, y)"),
            "b": parse_query("q(x) :- p(x, y), p(x, z)"),
        }
        rendered = format_equivalence_matrix(equivalence_matrix(queries))
        assert "a" in rendered and "b" in rendered and "equivalent" in rendered
        assert format_equivalence_matrix({}) == "(empty catalog)"

    def test_warehouse_rewriting_pair(self):
        warehouse = build_warehouse(stores=2, products=3, sales_per_store=4, seed=3)
        catalog = {
            name: warehouse.queries[name]
            for name in ("revenue_per_store", "revenue_per_store_alt")
        }
        results = equivalence_matrix(catalog)
        (result,) = results.values()
        assert result.verdict is Verdict.EQUIVALENT
