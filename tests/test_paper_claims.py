"""Integration tests pinned to specific statements of the paper.

Each test names the statement it exercises, so a reader can audit the
reproduction claim by claim.
"""

import pytest

from repro import Domain, Verdict, are_equivalent, parse_database, parse_query
from repro.aggregates import CNTD, MAX, PROD, SUM, TOP2, get_function
from repro.core import (
    bounded_equivalence,
    decomposition,
    decomposition_principle_holds,
    local_equivalence,
    quasilinear_equivalent,
    verify_decomposition,
)
from repro.engine import evaluate_aggregate, group_assignments


class TestSection2MonoidExamples:
    def test_example_2_1_t2_operation(self):
        monoid = TOP2.monoid
        assert monoid.operation((5,), (2, 1)) == (5, 2)
        assert monoid.operation((5, 2), (5, 1)) == (5, 2)
        assert monoid.operation((5,), (5,)) == (5,)
        assert monoid.neutral() == ()

    def test_example_2_2_classification(self):
        assert SUM.is_group_monoidal and not SUM.is_idempotent_monoidal
        assert MAX.is_idempotent_monoidal and TOP2.is_idempotent_monoidal
        assert get_function("count").is_group_monoidal
        assert get_function("parity").is_group_monoidal
        assert PROD.monoid is not None and PROD.monoid.is_group  # over Q±
        assert not CNTD.is_monoidal and not get_function("avg").is_monoidal


class TestSection4Statements:
    def test_proposition_4_2_shiftable_functions(self):
        for name in ("parity", "cntd", "count", "max", "top2"):
            assert get_function(name).is_shiftable

    def test_section_4_1_sum_prod_not_shiftable_witness(self):
        # The bags B = {2,2}, B' = {4} with φ(2)=3, φ(4)=5 from the paper.
        assert SUM.apply([2, 2]) == SUM.apply([4])
        assert SUM.apply([3, 3]) != SUM.apply([5])
        assert PROD.apply([2, 2]) == PROD.apply([4])
        assert PROD.apply([3, 3]) != PROD.apply([5])

    def test_theorem_4_8_procedure_is_sound_both_ways(self):
        # A pair that is 1-equivalent but not 2-equivalent.
        first = parse_query("q(count()) :- p(y), p(z), y < z")
        second = parse_query("q(count()) :- p(y), p(z), y != z")
        assert bounded_equivalence(first, second, 1).equivalent
        report = bounded_equivalence(first, second, 2)
        assert not report.equivalent
        witness = report.counterexample
        assert witness is not None and witness.database is not None
        assert witness.database.carrier_size <= 2
        assert evaluate_aggregate(first, witness.database) != evaluate_aggregate(
            second, witness.database
        )

    def test_corollary_4_11_negation_does_not_change_bounded_decidability(self):
        # The same positive pair decided with and without an added negated
        # subgoal on both sides; the procedure terminates in all cases.
        positive_first = parse_query("q(sum(y)) :- p(y)")
        positive_second = parse_query("q(sum(y)) :- p(y), p(y)")
        negated_first = parse_query("q(sum(y)) :- p(y), not r(y)")
        negated_second = parse_query("q(sum(y)) :- p(y), p(y), not r(y)")
        assert bounded_equivalence(positive_first, positive_second, 1).equivalent
        assert bounded_equivalence(negated_first, negated_second, 1).equivalent


class TestSection6Decompositions:
    def test_theorem_6_4_decompositions_exist(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        second = parse_query("q(x, sum(y)) :- p(x, y)")
        database = parse_database("p(1, 2). p(1, 3). p(2, 4). r(3). r(5).")
        for group in group_assignments(first, database):
            parts = decomposition(first, second, database, group)
            check = verify_decomposition(first, second, database, group, parts)
            assert check.is_decomposition

    def test_theorem_6_5_key_equation_for_group_and_idempotent_functions(self):
        database = parse_database("p(1, 2). p(1, 3). p(1, -1). r(3).")
        for function_name in ("sum", "count", "parity", "max", "top2"):
            if function_name in ("count", "parity"):
                first = parse_query(f"q(x, {function_name}()) :- p(x, y), not r(y)")
                second = parse_query(
                    f"q(x, {function_name}()) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0"
                )
            else:
                first = parse_query(f"q(x, {function_name}(y)) :- p(x, y), not r(y)")
                second = parse_query(
                    f"q(x, {function_name}(y)) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0"
                )
            assert decomposition_principle_holds(first, second, database, (1,))

    def test_corollary_6_8_decidable_classes(self):
        # max, top2, count, parity, sum over Z and Q; prod over Q.
        first = parse_query("q(max(y)) :- p(y) ; p(y), r(y)")
        second = parse_query("q(max(y)) :- p(y)")
        for domain in (Domain.INTEGERS, Domain.RATIONALS):
            assert local_equivalence(first, second, domain=domain).equivalent

    def test_theorem_6_6_prod_over_q_zero_case(self):
        # The queries agree on every database: the extra disjunct only repeats
        # assignments with y = 0, and any product containing 0 is 0.
        first = parse_query("q(prod(y)) :- p(y) ; p(y), y = 0")
        second = parse_query("q(prod(y)) :- p(y)")
        report = local_equivalence(first, second, domain=Domain.RATIONALS)
        assert report.equivalent
        # Sanity: with a nonzero pinned value instead, they differ.
        third = parse_query("q(prod(y)) :- p(y) ; p(y), y = 2")
        assert not local_equivalence(third, second, domain=Domain.RATIONALS).equivalent


class TestSection7Quasilinear:
    def test_theorem_7_2_singleton_determining_classes_are_proper(self):
        # Equivalence coincides with isomorphism: a non-isomorphic but
        # superficially similar pair must be rejected.
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(x)")
        second = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
        assert not quasilinear_equivalent(first, second).equivalent
        # And the verdict agrees with a concrete witness: r(1) blocks the
        # group x = 1 in the first query but not in the second.
        database = parse_database("p(1, 2). r(1).")
        assert evaluate_aggregate(first, database) != evaluate_aggregate(second, database)

    def test_theorem_7_2_failure_mode_for_cntd(self):
        # cntd is not singleton-determining: two non-isomorphic queries can be
        # equivalent, which is why Theorem 7.4 needs extra conditions.
        assert not CNTD.is_singleton_determining

    def test_corollary_7_5_polynomial_growth(self):
        import time

        from repro.workloads import linear_chain_query, renamed_copy

        timings = []
        for length in (2, 6):
            query = linear_chain_query(length, function="sum")
            copy = renamed_copy(query)
            start = time.perf_counter()
            assert quasilinear_equivalent(query, copy).equivalent
            timings.append(time.perf_counter() - start)
        # Tripling the chain length must not blow up the running time the way
        # the doubly-exponential general procedure would (sanity bound: 200×).
        assert timings[1] < timings[0] * 200 + 1.0


class TestSection8BagSetSemantics:
    def test_count_query_reduction_matches_direct_comparison(self):
        from repro.core import bag_set_equivalent

        first = parse_query("q(x) :- p(x, y), not r(y)")
        second = parse_query("q(x) :- p(x, y), not r(y), p(x, z)")
        via_count = bag_set_equivalent(first, second, via_count_queries=True)
        direct = bag_set_equivalent(first, second, via_count_queries=False)
        assert via_count.equivalent == direct.equivalent == False  # noqa: E712

    def test_set_equivalent_but_not_bag_set_equivalent(self):
        from repro.core import bag_set_equivalent, set_equivalent

        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        assert set_equivalent(first, second).equivalent
        assert not bag_set_equivalent(first, second).equivalent
