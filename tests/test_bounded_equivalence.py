"""Tests for bounded and local equivalence (Theorem 4.8)."""

import pytest

from repro import Domain, parse_query
from repro.core import (
    BAG_SET_SEMANTICS,
    bounded_equivalence,
    build_base,
    local_equivalence,
)
from repro.core.counterexample import exhaustive_counterexample
from repro.errors import ReproError, UnsupportedAggregateError


class TestBase:
    def test_base_contains_all_atoms_over_t(self):
        first = parse_query("q(max(y)) :- p(y), y > 3")
        second = parse_query("q(max(y)) :- p(y), r(y, y)")
        terms, base, fresh = build_base(first, second, 2)
        # T = {3} plus two fresh variables; p is unary, r is binary.
        assert len(terms) == 3
        assert len(fresh) == 2
        assert len(base) == 3 + 9

    def test_fresh_variables_avoid_query_variables(self):
        first = parse_query("q(max(y)) :- p(y, _u0)")
        second = parse_query("q(max(y)) :- p(y, z)")
        _, _, fresh = build_base(first, second, 2)
        assert all(v.name != "_u0" for v in fresh)


class TestAggregateBoundedEquivalence:
    def test_identical_queries_are_equivalent(self):
        query = parse_query("q(max(y)) :- p(y), not r(y)")
        report = bounded_equivalence(query, query, 2)
        assert report.equivalent
        assert report.subsets_examined > 0

    def test_renamed_copy_is_equivalent(self):
        first = parse_query("q(sum(y)) :- p(y, z)")
        second = parse_query("q(sum(y)) :- p(y, w)")
        assert bounded_equivalence(first, second, 2).equivalent

    def test_max_ignores_duplicates_but_sum_does_not(self):
        single = parse_query("q(max(y)) :- p(y)")
        double = parse_query("q(max(y)) :- p(y) ; p(y)")
        assert bounded_equivalence(single, double, 2).equivalent
        single_sum = parse_query("q(sum(y)) :- p(y)")
        double_sum = parse_query("q(sum(y)) :- p(y) ; p(y)")
        report = bounded_equivalence(single_sum, double_sum, 2)
        assert not report.equivalent
        assert report.counterexample is not None

    def test_negation_is_distinguished(self):
        first = parse_query("q(count()) :- p(y)")
        second = parse_query("q(count()) :- p(y), not r(y)")
        report = bounded_equivalence(first, second, 1)
        assert not report.equivalent
        witness = report.counterexample
        assert witness is not None and witness.database is not None
        # The witness database must actually distinguish the queries.
        from repro.engine import evaluate_aggregate

        assert evaluate_aggregate(first, witness.database) != evaluate_aggregate(
            second, witness.database
        )

    def test_comparison_rewriting_is_recognized(self):
        first = parse_query("q(count()) :- p(y), y > 0")
        second = parse_query("q(count()) :- p(y), 0 < y")
        assert bounded_equivalence(first, second, 2).equivalent

    def test_domain_sensitivity_of_comparisons(self):
        # Over Z, p(y), 0 < y < 2 is the same as p(y), y = 1; over Q it is not.
        first = parse_query("q(count()) :- p(y), y > 0, y < 2")
        second = parse_query("q(count()) :- p(y), y = 1")
        assert bounded_equivalence(first, second, 1, domain=Domain.INTEGERS).equivalent
        assert not bounded_equivalence(first, second, 1, domain=Domain.RATIONALS).equivalent

    def test_zero_bound_compares_constant_only_databases(self):
        first = parse_query("q(count()) :- p(1)")
        second = parse_query("q(count()) :- p(1), p(1)")
        assert bounded_equivalence(first, second, 0).equivalent

    def test_different_functions_rejected(self):
        first = parse_query("q(sum(y)) :- p(y)")
        second = parse_query("q(max(y)) :- p(y)")
        with pytest.raises(UnsupportedAggregateError):
            bounded_equivalence(first, second, 1)

    def test_aggregate_vs_plain_rejected(self):
        first = parse_query("q(sum(y)) :- p(y)")
        second = parse_query("q(y) :- p(y)")
        with pytest.raises(UnsupportedAggregateError):
            bounded_equivalence(first, second, 1)

    def test_search_space_guard(self):
        first = parse_query("q(sum(y)) :- p(x, y, z)")
        second = parse_query("q(sum(y)) :- p(x, y, w)")
        with pytest.raises(ReproError):
            bounded_equivalence(first, second, 4, max_subsets=1000)

    def test_symmetry_reduction_matches_full_enumeration(self):
        first = parse_query("q(count()) :- p(y), not r(y)")
        second = parse_query("q(count()) :- p(y)")
        with_reduction = bounded_equivalence(first, second, 2, symmetry_reduction=True)
        without_reduction = bounded_equivalence(first, second, 2, symmetry_reduction=False)
        assert with_reduction.equivalent == without_reduction.equivalent
        assert with_reduction.subsets_examined < without_reduction.subsets_examined

    def test_report_statistics_populated(self):
        query = parse_query("q(max(y)) :- p(y)")
        report = bounded_equivalence(query, query, 2)
        assert report.orderings_examined >= report.subsets_examined
        assert report.identities_checked > 0
        assert bool(report) is True


class TestNEquivalenceVersusTrueEquivalence:
    def test_n_equivalent_but_not_equivalent(self):
        """Two count-queries that agree on all databases with one constant but
        differ once two constants are available."""
        first = parse_query("q(count()) :- p(y), p(z), y < z")
        second = parse_query("q(count()) :- p(y), p(z), y != z")
        assert bounded_equivalence(first, second, 1).equivalent
        report = bounded_equivalence(first, second, 2)
        assert not report.equivalent

    def test_bound_monotonicity(self):
        first = parse_query("q(sum(y)) :- p(y)")
        second = parse_query("q(sum(y)) :- p(y), not r(y)")
        for bound in (0, 1):
            smaller = bounded_equivalence(first, second, bound)
            if not smaller.equivalent:
                # Once a counterexample exists it persists for larger bounds.
                assert not bounded_equivalence(first, second, bound + 1).equivalent
                break


class TestLocalEquivalence:
    def test_local_equivalence_uses_term_size(self):
        first = parse_query("q(max(y)) :- p(y), y > 3")
        second = parse_query("q(max(y)) :- p(y), y > 3, p(y)")
        report = local_equivalence(first, second)
        # τ = one constant (3) plus the maximal variable size (1, the variable y).
        assert report.bound == 2
        assert report.equivalent

    def test_local_equivalence_agrees_with_exhaustive_oracle(self):
        pairs = [
            ("q(count()) :- p(y), not r(y)", "q(count()) :- p(y)", False),
            ("q(max(y)) :- p(y) ; p(y), r(y)", "q(max(y)) :- p(y)", True),
            ("q(sum(y)) :- p(y), y > 0", "q(sum(y)) :- p(y), 0 < y", True),
        ]
        for first_text, second_text, expected in pairs:
            first, second = parse_query(first_text), parse_query(second_text)
            report = local_equivalence(first, second)
            assert report.equivalent == expected, first_text
            oracle = exhaustive_counterexample(first, second, values=[0, 1, 2], max_facts=3)
            assert (oracle is None) == expected


class TestNonAggregateSemantics:
    def test_set_semantics_projection(self):
        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        assert bounded_equivalence(first, second, 2).equivalent

    def test_bag_set_semantics_distinguishes_projection(self):
        first = parse_query("q(x) :- p(x, y)")
        second = parse_query("q(x) :- p(x, y), p(x, z)")
        report = bounded_equivalence(first, second, 2, semantics=BAG_SET_SEMANTICS)
        assert not report.equivalent

    def test_unknown_semantics_rejected(self):
        first = parse_query("q(x) :- p(x)")
        with pytest.raises(ReproError):
            bounded_equivalence(first, first, 1, semantics="three-valued")
