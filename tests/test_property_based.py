"""Property-based integration tests.

These tests tie the decision procedures to ground truth:

* the bounded-equivalence procedure must agree with an exhaustive concrete
  oracle on randomly generated query pairs,
* the quasilinear fast path must agree with the general procedure,
* a positive verdict of the top-level checker implies agreement on random
  databases (soundness spot-check of Theorem 6.5's direction that matters in
  practice).
"""

import random
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Domain, are_equivalent, evaluate, parse_query
from repro.core import bounded_equivalence, exhaustive_counterexample, local_equivalence
from repro.core.quasilinear import quasilinear_equivalent
from repro.datalog import Query
from repro.workloads import QueryGenerator, QueryProfile

#: Small hand-rolled pool of query templates over a unary predicate p and a
#: unary predicate r; combined with random aggregation functions this gives a
#: diverse but *small* space where exhaustive oracles are affordable.
UNARY_BODIES = [
    "p(y)",
    "p(y), not r(y)",
    "p(y), y > 0",
    "p(y), 0 < y",
    "p(y), y >= 0",
    "p(y), r(y)",
    "p(y) ; p(y), r(y)",
    "p(y) ; p(y)",
    "p(y), not r(y) ; p(y), r(y)",
]

FUNCTIONS = ["count", "sum", "max", "parity", "top2"]


def build(function: str, body: str) -> Query:
    head = f"q({function}(y))" if function not in ("count", "parity") else f"q({function}())"
    return parse_query(f"{head} :- {body}")


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    function=st.sampled_from(FUNCTIONS),
    first_body=st.sampled_from(UNARY_BODIES),
    second_body=st.sampled_from(UNARY_BODIES),
)
def test_bounded_procedure_agrees_with_exhaustive_oracle(function, first_body, second_body):
    """Both directions of soundness for N = 2:

    * if the procedure claims 2-equivalence, no database with at most two
      constants (drawn from a pool covering every order type around the query
      constants) may distinguish the queries;
    * if the procedure claims non-equivalence, its own counterexample — or one
      found among the pool databases — must concretely distinguish them.
    """
    from repro.core.counterexample import enumerate_databases
    from repro.datalog import combined_predicate_arities

    first, second = build(function, first_body), build(function, second_body)
    report = bounded_equivalence(first, second, 2, domain=Domain.RATIONALS)

    pool = sorted(
        {-2, -1, 0, 1, 2} | {c.value for c in first.constants() | second.constants()}
    )
    arities = combined_predicate_arities(first, second)
    witness = None
    for database in enumerate_databases(arities, pool):
        if database.carrier_size > 2:
            continue
        if evaluate(first, database) != evaluate(second, database):
            witness = database
            break

    if report.equivalent:
        assert witness is None, (
            f"{first} vs {second}: procedure claims 2-equivalence but {witness} distinguishes them"
        )
    else:
        concrete = report.counterexample.database if report.counterexample else None
        if concrete is not None:
            assert evaluate(first, concrete) != evaluate(second, concrete)
        else:
            assert witness is not None, (
                f"{first} vs {second}: procedure claims non-equivalence without any witness"
            )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    function=st.sampled_from(["sum", "max", "count"]),
    first_body=st.sampled_from([b for b in UNARY_BODIES if ";" not in b]),
    second_body=st.sampled_from([b for b in UNARY_BODIES if ";" not in b]),
)
def test_quasilinear_agrees_with_general_procedure(function, first_body, second_body):
    first, second = build(function, first_body), build(function, second_body)
    if not (first.is_quasilinear and second.is_quasilinear):
        return
    fast = quasilinear_equivalent(first, second)
    slow = local_equivalence(first, second)
    assert fast.equivalent == slow.equivalent, f"{first} vs {second}"


class TestCheckerSoundnessOnRandomWorkloads:
    @pytest.mark.parametrize("function", ["sum", "max", "count"])
    def test_equivalent_verdicts_hold_on_random_databases(self, function):
        profile = QueryProfile(
            predicates={"p": 2, "r": 1},
            aggregation_function=function,
            quasilinear_only=True,
            max_comparisons=1,
            constants=(0, 2),
        )
        # zlib.crc32 is stable across processes, unlike hash() which varies
        # with PYTHONHASHSEED and made this test explore a different random
        # region (and occasionally flake) on every run.
        generator = QueryGenerator(profile, seed=zlib.crc32(function.encode()) % 1000)
        rng = random.Random(99)
        checked = 0
        for _ in range(15):
            first, second = generator.query_pair()
            result = are_equivalent(first, second)
            if not result.is_equivalent:
                continue
            checked += 1
            for _ in range(10):
                database = generator.database(max_facts=8)
                assert evaluate(first, database) == evaluate(second, database), (
                    f"checker said equivalent but results differ: {first} vs {second} on {database}"
                )
        assert checked > 0

    def test_not_equivalent_verdicts_have_witnesses_on_small_pools(self):
        profile = QueryProfile(
            predicates={"p": 1, "r": 1},
            aggregation_function="count",
            quasilinear_only=False,
            max_disjuncts=2,
            max_comparisons=1,
            constants=(0,),
        )
        generator = QueryGenerator(profile, seed=77)
        examined = 0
        for _ in range(10):
            first, second = generator.query_pair()
            result = are_equivalent(first, second, max_subsets=2**22)
            if result.is_equivalent:
                continue
            examined += 1
            witness = exhaustive_counterexample(first, second, values=[0, 1, 2], max_facts=4)
            assert witness is not None, f"no concrete witness for {first} vs {second}"
        assert examined >= 0
