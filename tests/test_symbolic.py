"""Tests for symbolic evaluation over S_L databases (Theorem 4.8 machinery)."""

import pytest

from repro.datalog import Constant, RelationalAtom, Variable, parse_query
from repro.domains import Domain
from repro.engine import (
    SymbolicDatabase,
    symbolic_answer_multiset,
    symbolic_groups,
    symbolic_satisfying_assignments,
)
from repro.errors import EvaluationError
from repro.orderings import CompleteOrdering

U0, U1, U2 = Variable("_u0"), Variable("_u1"), Variable("_u2")


def make_ordering(blocks, domain=Domain.RATIONALS):
    return CompleteOrdering(tuple(frozenset(b) for b in blocks), domain)


def sdb(atoms, blocks, domain=Domain.RATIONALS):
    return SymbolicDatabase(frozenset(atoms), make_ordering(blocks, domain))


class TestSymbolicDatabase:
    def test_rejects_negated_atoms(self):
        with pytest.raises(EvaluationError):
            sdb([RelationalAtom("p", (U0,), negated=True)], [{U0}])

    def test_canonical_relations_collapse_equal_terms(self):
        database = sdb(
            [RelationalAtom("p", (U0,)), RelationalAtom("p", (U1,))],
            [{U0, U1}],
        )
        assert len(database.relation("p")) == 1
        assert database.carrier_terms == frozenset({U0})

    def test_constants_are_their_own_representatives(self):
        database = sdb([RelationalAtom("p", (Constant(3), U0))], [{Constant(3)}, {U0}])
        assert database.contains("p", (Constant(3), U0))

    def test_instantiate_produces_concrete_database(self):
        database = sdb(
            [RelationalAtom("p", (U0, U1)), RelationalAtom("p", (U1, U1))],
            [{U0}, {U1}],
        )
        concrete = database.instantiate()
        assert len(concrete) == 2
        assert concrete.carrier_size == 2

    def test_instantiate_collapses_equal_blocks(self):
        database = sdb(
            [RelationalAtom("p", (U0,)), RelationalAtom("p", (U1,))],
            [{U0, U1}],
        )
        assert len(database.instantiate()) == 1


class TestSymbolicEvaluation:
    def test_positive_matching(self):
        query = parse_query("q(x, count()) :- p(x, y)")
        database = sdb(
            [RelationalAtom("p", (U0, U1)), RelationalAtom("p", (U0, U0))],
            [{U0}, {U1}],
        )
        assignments = symbolic_satisfying_assignments(query, database)
        assert len(assignments) == 2

    def test_negation_respects_ordering_equalities(self):
        query = parse_query("q(x, count()) :- p(x), not r(x)")
        # r(u1) is present and u0 = u1, so the negated atom blocks u0.
        database = sdb(
            [RelationalAtom("p", (U0,)), RelationalAtom("r", (U1,))],
            [{U0, U1}],
        )
        assert symbolic_satisfying_assignments(query, database) == []
        # With distinct blocks the assignment survives.
        database2 = sdb(
            [RelationalAtom("p", (U0,)), RelationalAtom("r", (U1,))],
            [{U0}, {U1}],
        )
        assert len(symbolic_satisfying_assignments(query, database2)) == 1

    def test_comparisons_evaluated_via_ordering(self):
        query = parse_query("q(count()) :- p(y), y > 0")
        zero = Constant(0)
        above = sdb([RelationalAtom("p", (U0,))], [{zero}, {U0}])
        below = sdb([RelationalAtom("p", (U0,))], [{U0}, {zero}])
        assert len(symbolic_satisfying_assignments(query, above)) == 1
        assert symbolic_satisfying_assignments(query, below) == []

    def test_query_constant_must_match_database_term(self):
        query = parse_query("q(count()) :- p(3, y)")
        three = Constant(3)
        database = sdb([RelationalAtom("p", (three, U0))], [{three}, {U0}])
        assert len(symbolic_satisfying_assignments(query, database)) == 1
        database2 = sdb([RelationalAtom("p", (U1, U0))], [{three}, {U0}, {U1}])
        assert symbolic_satisfying_assignments(query, database2) == []

    def test_query_constant_equated_with_variable_block(self):
        query = parse_query("q(count()) :- p(3, y)")
        three = Constant(3)
        database = sdb([RelationalAtom("p", (U1, U0))], [{three, U1}, {U0}])
        assert len(symbolic_satisfying_assignments(query, database)) == 1

    def test_groups_collect_term_bags(self):
        query = parse_query("q(x, sum(y)) :- p(x, y)")
        database = sdb(
            [
                RelationalAtom("p", (U0, U1)),
                RelationalAtom("p", (U0, U2)),
                RelationalAtom("p", (U1, U2)),
            ],
            [{U0}, {U1}, {U2}],
        )
        groups = symbolic_groups(query, database)
        assert set(groups) == {(U0,), (U1,)}
        assert sorted(groups[(U0,)]) == sorted([(U1,), (U2,)])

    def test_answer_multiset_counts_disjuncts(self):
        query = parse_query("q(x) :- p(x) ; p(x)")
        database = sdb([RelationalAtom("p", (U0,))], [{U0}])
        assert symbolic_answer_multiset(query, database) == {(U0,): 2}

    def test_disjunctive_symbolic_groups(self):
        query = parse_query("q(x, count()) :- p(x, y) ; r(x, y)")
        database = sdb(
            [RelationalAtom("p", (U0, U1)), RelationalAtom("r", (U0, U1))],
            [{U0}, {U1}],
        )
        groups = symbolic_groups(query, database)
        assert len(groups[(U0,)]) == 2

    def test_symbolic_agrees_with_concrete_on_instantiation(self):
        from repro.engine import evaluate_aggregate

        query = parse_query("q(x, count()) :- p(x, y), not r(y), y > 0")
        zero = Constant(0)
        database = sdb(
            [
                RelationalAtom("p", (U0, U1)),
                RelationalAtom("p", (U0, U2)),
                RelationalAtom("r", (U2,)),
            ],
            [{zero}, {U0}, {U1}, {U2}],
        )
        groups = symbolic_groups(query, database)
        concrete = evaluate_aggregate(query, database.instantiate())
        assignment = database.ordering.instantiate()
        translated = {
            tuple(assignment[t] if t in assignment else t.value for t in key): len(bag)
            for key, bag in groups.items()
        }
        assert translated == concrete
