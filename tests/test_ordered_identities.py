"""Tests for the ordered-identity deciders (Section 4.2).

The key soundness property: if a decider declares ``L → α(B) = α(B')`` valid,
then *every* assignment satisfying ``L`` makes the aggregates equal; if it
declares the identity invalid and the function is shiftable, a single
assignment already exhibits the difference (Theorem 4.4).
"""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    AVG,
    CNTD,
    COUNT,
    MAX,
    PAPER_FUNCTIONS,
    PARITY,
    PROD,
    SUM,
    TOP2,
    ordered_identity_inconsistency,
    random_realization,
)
from repro.datalog import Constant, Variable
from repro.domains import Domain
from repro.orderings import CompleteOrdering

U, V, W = Variable("u"), Variable("v"), Variable("w")


def ordering(blocks, domain=Domain.RATIONALS):
    return CompleteOrdering(tuple(frozenset(b) for b in blocks), domain)


def bag(*terms):
    return [(term,) for term in terms]


class TestShiftableDeciders:
    def test_max_identity_depends_on_order_only(self):
        L = ordering([{U}, {V}])
        assert MAX.decide_ordered_identity(L, bag(U, V), bag(V))
        assert not MAX.decide_ordered_identity(L, bag(U), bag(V))

    def test_top2_identity(self):
        L = ordering([{U}, {V}, {W}])
        assert TOP2.decide_ordered_identity(L, bag(U, V, W), bag(V, W))
        assert not TOP2.decide_ordered_identity(L, bag(U, W), bag(V, W))

    def test_count_and_parity_cardinality(self):
        L = ordering([{U}, {V}])
        assert COUNT.decide_ordered_identity(L, [(), ()], [(), ()])
        assert not COUNT.decide_ordered_identity(L, [()], [(), ()])
        assert PARITY.decide_ordered_identity(L, [()], [(), (), ()])
        assert not PARITY.decide_ordered_identity(L, [()], [(), ()])

    def test_cntd_example_from_paper(self):
        # Example 4.3: B = {1, 2, u}, B' = {v, v, 7, 8}.
        one, two, seven, eight = Constant(1), Constant(2), Constant(7), Constant(8)
        # Ordering: 1 < 2 < u < 7 < v < 8: |B| distinct = 3, |B'| distinct = 3.
        L = ordering([{one}, {two}, {U}, {seven}, {V}, {eight}])
        assert CNTD.decide_ordered_identity(L, bag(one, two, U), bag(V, V, seven, eight))
        # Ordering where u = 1: B has 2 distinct values, B' still 3.
        L2 = ordering([{one, U}, {two}, {seven}, {V}, {eight}])
        assert not CNTD.decide_ordered_identity(L2, bag(one, two, U), bag(V, V, seven, eight))

    def test_equal_blocks_collapse(self):
        L = ordering([{U, V}])
        assert MAX.decide_ordered_identity(L, bag(U), bag(V))
        assert CNTD.decide_ordered_identity(L, bag(U, V), bag(U))


class TestSumDecider:
    def test_same_multiset_of_blocks_is_valid(self):
        L = ordering([{U}, {V}])
        assert SUM.decide_ordered_identity(L, bag(U, V), bag(V, U))

    def test_different_multiplicities_invalid(self):
        L = ordering([{U}, {V}])
        assert not SUM.decide_ordered_identity(L, bag(U, U), bag(U))
        assert not SUM.decide_ordered_identity(L, bag(U, V), bag(U))

    def test_constants_summed_exactly(self):
        two, three, five = Constant(2), Constant(3), Constant(5)
        L = ordering([{two}, {three}, {five}, {U}])
        assert SUM.decide_ordered_identity(L, bag(two, three, U), bag(five, U))
        assert not SUM.decide_ordered_identity(L, bag(two, two, U), bag(five, U))

    def test_integer_pinning_makes_identity_valid(self):
        # Over Z with 3 < u < 5, u is pinned to 4, so sum{u} = sum{4}.
        three, four, five = Constant(3), Constant(4), Constant(5)
        L = ordering([{three}, {U}, {five}], Domain.INTEGERS)
        assert L.canonical_term(U) == Constant(4)
        assert SUM.decide_ordered_identity(L, bag(U), bag(four))
        assert not SUM.decide_ordered_identity(L, bag(U), bag(three))

    def test_pinned_variable_against_constants(self):
        # 0 < u < 2 over Z pins u = 1; then sum{u, u} = sum{2}... requires 2 in T.
        zero, two = Constant(0), Constant(2)
        L = ordering([{zero}, {U}, {two}], Domain.INTEGERS)
        assert SUM.decide_ordered_identity(L, bag(U, U), bag(two))
        # Over Q the same identity is invalid (u is free).
        L_dense = ordering([{zero}, {U}, {two}], Domain.RATIONALS)
        assert not SUM.decide_ordered_identity(L_dense, bag(U, U), bag(two))

    def test_shiftability_counterexample_of_section_4_1(self):
        # B = {2, 2}, B' = {4}: equal sums, but shifting breaks the equality —
        # the symbolic decider must therefore call this identity invalid for
        # the ordering 2 < 4 with variables in place of values... expressed
        # directly with constants the identity IS valid (ground equality).
        two, four = Constant(2), Constant(4)
        L = ordering([{two}, {four}])
        assert SUM.decide_ordered_identity(L, bag(two, two), bag(four))
        # With variables u < v (abstracting 2 < 4) it is invalid.
        L2 = ordering([{U}, {V}])
        assert not SUM.decide_ordered_identity(L2, bag(U, U), bag(V))


class TestAvgDecider:
    def test_scaled_equality(self):
        L = ordering([{U}, {V}])
        # avg{u, v} = avg{u, u, v, v}
        assert AVG.decide_ordered_identity(L, bag(U, V), bag(U, U, V, V))
        assert not AVG.decide_ordered_identity(L, bag(U, V), bag(U, U, V))

    def test_singleton_average(self):
        L = ordering([{U}, {V}])
        assert AVG.decide_ordered_identity(L, bag(U), bag(U, U, U))
        assert not AVG.decide_ordered_identity(L, bag(U), bag(V))

    def test_empty_bags(self):
        L = ordering([{U}])
        assert AVG.decide_ordered_identity(L, [], [])
        assert not AVG.decide_ordered_identity(L, [], bag(U))


class TestProdDecider:
    def test_equal_exponents_and_constants(self):
        two = Constant(2)
        L = ordering([{two}, {U}, {V}])
        assert PROD.decide_ordered_identity(L, bag(U, V, two), bag(two, V, U))
        assert not PROD.decide_ordered_identity(L, bag(U, U), bag(U))

    def test_constant_mismatch_invalid(self):
        two, three = Constant(2), Constant(3)
        L = ordering([{two}, {three}, {U}])
        assert not PROD.decide_ordered_identity(L, bag(two, U), bag(three, U))

    def test_zero_absorbs(self):
        zero = Constant(0)
        L = ordering([{zero}, {U}])
        # Both sides contain the constant 0 -> both products are 0.
        assert PROD.decide_ordered_identity(L, bag(zero, U), bag(zero, U, U))

    def test_variable_that_may_be_zero(self):
        # u with no constraints relative to 0: prod{u} vs prod{u, u} must be
        # invalid (u = 2 is a counterexample even though u = 0 and u = 1 agree).
        L = ordering([{U}])
        assert not PROD.decide_ordered_identity(L, bag(U), bag(U, U))

    def test_conservative_extension_forces_zero_over_integers(self):
        # -1 < u < 1 over Z pins u to 0, so prod{u, v} = prod{u, w} (both 0).
        minus_one, one = Constant(-1), Constant(1)
        L = ordering([{minus_one}, {U}, {one}, {V}, {W}], Domain.INTEGERS)
        assert PROD.decide_ordered_identity(L, bag(U, V), bag(U, W))
        # Over Q, u is not pinned and the identity fails.
        L_dense = ordering([{minus_one}, {U}, {one}, {V}, {W}], Domain.RATIONALS)
        assert not PROD.decide_ordered_identity(L_dense, bag(U, V), bag(U, W))

    def test_sum_prod_shiftability_failure_is_visible(self):
        # The classic witness that prod is not shiftable: {2, 2} vs {4}.
        two, four = Constant(2), Constant(4)
        L = ordering([{two}, {four}])
        assert PROD.decide_ordered_identity(L, bag(two, two), bag(four))
        L2 = ordering([{U}, {V}])
        assert not PROD.decide_ordered_identity(L2, bag(U, U), bag(V))


class TestCrossValidation:
    """The deciders must agree with concrete evaluation on random instances."""

    @pytest.mark.parametrize("function", PAPER_FUNCTIONS, ids=lambda f: f.name)
    @pytest.mark.parametrize("dom", [Domain.RATIONALS, Domain.INTEGERS], ids=["Q", "Z"])
    def test_no_inconsistency_found(self, function, dom):
        # Stable across processes (hash() varies with PYTHONHASHSEED).
        rng = random.Random(zlib.crc32(f"{function.name}/{dom.value}".encode()) % (2**31))
        inconsistency = ordered_identity_inconsistency(function, dom, rng, trials=25)
        assert inconsistency is None, str(inconsistency)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_valid_identities_hold_under_random_realizations(self, data):
        function = data.draw(st.sampled_from([SUM, AVG, PROD, MAX, COUNT]), label="function")
        dom = data.draw(st.sampled_from([Domain.RATIONALS, Domain.INTEGERS]), label="domain")
        terms = [U, V, Constant(data.draw(st.integers(min_value=-2, max_value=2), label="c"))]
        from repro.orderings import enumerate_complete_orderings

        orderings = [L for L in enumerate_complete_orderings(terms, dom)]
        L = data.draw(st.sampled_from(orderings), label="ordering")
        arity = function.input_arity or 0
        pool = list(L.terms())
        left = [
            tuple(data.draw(st.sampled_from(pool)) for _ in range(arity))
            for _ in range(data.draw(st.integers(min_value=0, max_value=3), label="nl"))
        ]
        right = [
            tuple(data.draw(st.sampled_from(pool)) for _ in range(arity))
            for _ in range(data.draw(st.integers(min_value=0, max_value=3), label="nr"))
        ]
        decided = function.decide_ordered_identity(L, left, right)
        if decided:
            rng = random.Random(data.draw(st.integers(min_value=0, max_value=10**6), label="seed"))
            for _ in range(4):
                assignment = random_realization(L, rng)
                concrete_left = [
                    tuple(t.value if isinstance(t, Constant) else assignment[t] for t in element)
                    for element in left
                ]
                concrete_right = [
                    tuple(t.value if isinstance(t, Constant) else assignment[t] for t in element)
                    for element in right
                ]
                assert function.apply(concrete_left) == function.apply(concrete_right)
