"""Tests for the unified instrumentation subsystem (`repro.obs`).

Four contracts are load-bearing:

* **Registry semantics** — snapshot/diff/merge compose deterministically
  (integer addition commutes), so parent-merged worker deltas never depend
  on scheduling, and the serial and workers=2 runs of the same catalog
  report identical engine/sweep counter totals.
* **Reset semantics** — cache clears reset exactly the registry scopes that
  describe the dropped caches (``engine.kernel.`` / ``engine.store.`` /
  ``engine.dispatch.`` for :func:`clear_evaluation_caches`, ``engine.gamma.``
  for :func:`clear_symbolic_caches`); work-performed scopes (``sweep.``,
  ``parallel.``, ``worker.``) survive every clear.
* **Trace schema** — ``REPRO_TRACE`` JSONL validates: well-formed events,
  balanced begin/end per ``(pid, id)``, per-pid monotonic timestamps.
* **Provenance** — ``Workspace.explain`` returns a complete explanation for
  every settled cell of a decided matrix, including cache-served cells.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from contextlib import contextmanager

import pytest

from repro import ReproError, Workspace, parse_query
from repro.engine import (
    clear_evaluation_caches,
    clear_plan_cache,
    clear_symbolic_caches,
    kernel_cache_stats,
    plan_cache_stats,
    store_cache_stats,
)
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    span,
    validate_trace,
    validate_trace_file,
)
from repro.obs import trace as _trace_module
from repro.workloads import build_view_scenario, build_warehouse
from repro.workloads.batch import decide_pairs, sweep_group_label


def _cold() -> None:
    clear_evaluation_caches()
    clear_plan_cache()
    clear_symbolic_caches()
    REGISTRY.reset()


@contextmanager
def _temporary_trace(path):
    """Redirect tracing to ``path`` and restore the prior sink afterwards
    (the suite may itself be running under ``REPRO_TRACE``)."""
    prior = _trace_module._sink.name if enabled() else None
    enable(str(path))
    try:
        yield
    finally:
        disable()
        if prior is not None:
            enable(prior)


def _merged_totals(snapshot: dict) -> dict:
    """Fold ``worker.<name>`` slices onto their base names."""
    merged: dict[str, int] = {}
    for name, value in snapshot.items():
        base = name[len("worker."):] if name.startswith("worker.") else name
        merged[base] = merged.get(base, 0) + value
    return merged


def _parity_catalogs() -> dict[str, dict]:
    from test_session import scenario_catalogs
    from test_sweep import _audit_catalog

    catalogs = scenario_catalogs()
    catalogs["audit"] = _audit_catalog()  # routes through sweep groups
    return catalogs


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_inc_get_total(self):
        registry = MetricsRegistry()
        registry.inc("engine.kernel.compiles")
        registry.inc("engine.kernel.compiles", 4)
        registry.inc("worker.engine.kernel.compiles", 2)
        assert registry.get("engine.kernel.compiles") == 5
        assert registry.get("never.touched") == 0
        assert registry.total("engine.kernel.compiles") == 7

    def test_snapshot_diff_omits_zero_growth(self):
        registry = MetricsRegistry()
        registry.inc("a.x", 3)
        registry.inc("a.y", 1)
        before = registry.snapshot()
        registry.inc("a.x", 2)
        assert registry.diff(before) == {"a.x": 2}
        assert registry.snapshot("a.") == {"a.x": 5, "a.y": 1}

    def test_merge_is_commutative_and_prefixable(self):
        deltas = [{"e.c": 2, "e.h": 1}, {"e.c": 5}, {"e.h": 7}]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge(delta, prefix="worker.")
        for delta in reversed(deltas):
            backward.merge(delta, prefix="worker.")
        assert forward.snapshot() == backward.snapshot()
        assert forward.get("worker.e.c") == 7
        assert forward.get("e.c") == 0

    def test_reset_by_prefix(self):
        registry = MetricsRegistry()
        registry.inc("engine.kernel.compiles")
        registry.inc("engine.store.builds")
        registry.inc("sweep.subsets.examined")
        registry.reset("engine.kernel.")
        assert registry.get("engine.kernel.compiles") == 0
        assert registry.get("engine.store.builds") == 1
        registry.reset()
        assert registry.snapshot() == {}

    def test_tree_groups_by_scope(self):
        registry = MetricsRegistry()
        registry.inc("engine.kernel.compiles", 5)
        registry.inc("sweep.subsets.examined", 9)
        registry.inc("worker.engine.kernel.compiles", 2)
        assert registry.tree() == {
            "engine": {"kernel.compiles": 5},
            "sweep": {"subsets.examined": 9},
            "worker": {"engine.kernel.compiles": 2},
        }


# ----------------------------------------------------------------------
# Reset semantics (pinned: which clear resets which scope)
# ----------------------------------------------------------------------
class TestResetSemantics:
    def _seed_all_scopes(self):
        for name in (
            "engine.kernel.compiles",
            "engine.store.builds",
            "engine.dispatch.loop",
            "engine.gamma.shared_hits",
            "sweep.subsets.examined",
            "parallel.pool.forks",
            "worker.engine.kernel.compiles",
        ):
            REGISTRY.inc(name, 3)

    def test_clear_evaluation_caches_resets_engine_slices_only(self):
        _cold()
        self._seed_all_scopes()
        clear_evaluation_caches()
        assert REGISTRY.get("engine.kernel.compiles") == 0
        assert REGISTRY.get("engine.store.builds") == 0
        assert REGISTRY.get("engine.dispatch.loop") == 0
        # Γ counters are owned by clear_symbolic_caches, not this clear.
        assert REGISTRY.get("engine.gamma.shared_hits") == 3
        # Work-performed scopes survive every cache clear.
        assert REGISTRY.get("sweep.subsets.examined") == 3
        assert REGISTRY.get("parallel.pool.forks") == 3
        assert REGISTRY.get("worker.engine.kernel.compiles") == 3
        _cold()

    def test_clear_symbolic_caches_resets_gamma(self):
        _cold()
        self._seed_all_scopes()
        clear_symbolic_caches()
        assert REGISTRY.get("engine.gamma.shared_hits") == 0
        assert REGISTRY.get("sweep.subsets.examined") == 3
        assert REGISTRY.get("worker.engine.kernel.compiles") == 3
        _cold()

    def test_legacy_stats_shapes_are_registry_backed(self):
        _cold()
        warehouse = build_warehouse()
        decide_pairs(warehouse.queries, workers=1, seed=3)
        assert set(kernel_cache_stats()) == {"entries", "compiles", "hits"}
        assert set(store_cache_stats()) == {"entries", "builds", "hits"}
        assert set(plan_cache_stats()) == {"entries", "builds", "hits"}
        assert kernel_cache_stats()["compiles"] == REGISTRY.get("engine.kernel.compiles")
        assert kernel_cache_stats()["compiles"] > 0
        clear_evaluation_caches()
        assert kernel_cache_stats() == {"entries": 0, "compiles": 0, "hits": 0}
        _cold()


# ----------------------------------------------------------------------
# Counter parity: serial == merged workers=2, per catalog
# ----------------------------------------------------------------------
class TestCounterParity:
    #: Scopes whose totals are deterministic under parallel execution: every
    #: cell/sweep is counted once in whichever process performed the work,
    #: and the merge is commutative.  (``engine.gamma.`` is excluded — the
    #: per-process Γ caches make hit/miss splits fork-dependent; ``parallel.``
    #: legitimately differs, the parallel run forks a pool.)
    DETERMINISTIC = ("engine.kernel.", "engine.store.", "engine.dispatch.", "sweep.")

    @pytest.mark.parametrize("label", ["warehouse", "views", "audit"])
    def test_serial_equals_merged_parallel(self, label, monkeypatch):
        # Nested searches consult REPRO_WORKERS when callers pass None; pin
        # the environment so the "serial" leg is actually serial end to end.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        catalog = _parity_catalogs()[label]
        _cold()
        serial_results = decide_pairs(catalog, workers=1, seed=11)
        serial = _merged_totals(REGISTRY.snapshot())
        _cold()
        parallel_results = decide_pairs(catalog, workers=2, seed=11)
        merged = _merged_totals(REGISTRY.snapshot())
        _cold()
        assert {p: r.verdict for p, r in serial_results.items()} == {
            p: r.verdict for p, r in parallel_results.items()
        }
        for scope in self.DETERMINISTIC:
            serial_scope = {k: v for k, v in serial.items() if k.startswith(scope)}
            merged_scope = {k: v for k, v in merged.items() if k.startswith(scope)}
            assert serial_scope == merged_scope, scope
        # One-shot decide_pairs may fork once per parallel phase (sweep
        # shards, then pair tasks), but the serial run must never fork.
        assert serial.get("parallel.pool.forks", 0) == 0
        assert merged.get("parallel.pool.forks", 0) >= 1

    def test_audit_catalog_counts_sweep_work(self):
        catalog = _parity_catalogs()["audit"]
        _cold()
        decide_pairs(catalog, workers=1, seed=11)
        assert REGISTRY.get("sweep.subsets.examined") > 0
        assert REGISTRY.get("sweep.orderings.examined") > 0
        _cold()


# ----------------------------------------------------------------------
# Trace schema
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_span_is_shared_and_inert(self):
        if enabled():
            pytest.skip("suite is running under REPRO_TRACE")
        first = span("x", a=1)
        second = span("y")
        assert first is second  # the allocation-free null span
        with first as entered:
            entered.note(anything=1)

    def test_trace_file_validates_and_contains_decision_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with _temporary_trace(path):
            _cold()
            ws = Workspace()
            ws.add("q(x, sum(y)) :- p(x, y), y > 0", name="a")
            ws.add("q(x, sum(z)) :- p(x, z), z > 0, not r(x)", name="b")
            ws.equivalences()
            ws.close()
        assert validate_trace_file(str(path)) == []
        spans = set()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                spans.add(record["span"])
        assert "session.equivalences" in spans
        assert "dispatch.classify" in spans
        assert "sweep.plan" in spans
        _cold()

    def test_span_records_error_and_stays_balanced(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with _temporary_trace(path):
            with pytest.raises(ValueError):
                with span("failing.stage"):
                    raise ValueError("boom")
        assert validate_trace_file(str(path)) == []
        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert records[-1]["event"] == "end"
        assert records[-1]["error"] == "ValueError"
        assert "dur_s" in records[-1]

    def test_validator_rejects_malformed_traces(self):
        assert validate_trace([]) == ["trace is empty (no events)"]
        assert any("not valid JSON" in e for e in validate_trace(["{broken"]))
        assert any(
            "unknown event" in e
            for e in validate_trace(['{"event": "middle", "span": "x", "id": 1, "pid": 1, "t": 0}'])
        )
        unbalanced = ['{"event": "begin", "span": "x", "id": 1, "pid": 1, "t": 0.5}']
        assert any("unclosed span" in e for e in validate_trace(unbalanced))
        backwards = [
            '{"event": "begin", "span": "x", "id": 1, "pid": 1, "t": 2.0}',
            '{"event": "end", "span": "x", "id": 1, "pid": 1, "t": 1.0, "dur_s": 0.1}',
        ]
        assert any("goes backwards" in e for e in validate_trace(backwards))

    def test_validate_cli(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with _temporary_trace(path):
            with span("cli.check"):
                pass
        env = dict(os.environ)
        env.pop("REPRO_TRACE", None)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        ok = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", str(path)],
            capture_output=True, text=True, env=env,
        )
        assert ok.returncode == 0, ok.stderr
        assert "trace ok" in ok.stdout
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "nope"}\n', encoding="utf-8")
        failed = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", str(bad)],
            capture_output=True, text=True, env=env,
        )
        assert failed.returncode == 1
        assert "trace invalid" in failed.stderr


# ----------------------------------------------------------------------
# Workspace provenance and hierarchical stats
# ----------------------------------------------------------------------
class TestWorkspaceObservability:
    def test_explain_covers_every_cell_of_the_warehouse_matrix(self):
        _cold()
        scenario = build_warehouse()
        ws = Workspace()
        for name, query in scenario.queries.items():
            ws.add(query, name=name)
        results = ws.equivalences()
        assert len(results) == 28  # 8 warehouse queries -> C(8, 2) cells
        for pair, result in results.items():
            explanation = ws.explain(*pair)
            assert explanation.pair == pair
            assert explanation.verdict == result.verdict.value
            assert explanation.method == result.method
            assert explanation.dispatch_class != "unknown", result.method
            assert explanation.decision_path != "unknown"
            assert explanation.decision_path.startswith(("sweep:", "pair", "cache"))
            assert explanation.engine in ("naive", "planned", "compiled")
            assert explanation.decided_in_call == 1
            assert explanation.cache_served is False
            assert explanation.domain in ("integers", "rationals")
            if result.verdict.value == "not equivalent":
                assert explanation.witness is not None
            assert isinstance(explanation.summary(), str)
        ws.close()
        _cold()

    def test_explain_order_insensitive_and_unsettled_raises(self):
        ws = Workspace()
        ws.add("q(x) :- p(x, y)", name="a")
        ws.add("q(x) :- p(x, y), r(x)", name="b")
        with pytest.raises(ReproError):
            ws.explain("a", "b")  # not settled yet
        ws.equivalences()
        assert ws.explain("a", "b") == ws.explain("b", "a")
        with pytest.raises(ReproError):
            ws.explain("a", "a")
        with pytest.raises(ReproError):
            ws.explain("a", "missing")
        ws.close()
        # explain still works after close: pure introspection.
        assert ws.explain("a", "b").verdict

    def test_cache_served_cells_carry_cache_provenance(self):
        hits_before = REGISTRY.get("session.verdict_cache.hits")
        ws = Workspace()
        ws.add("q(x, sum(y)) :- p(x, y)", name="a")
        ws.add("q(x, count()) :- p(x, y)", name="b")
        ws.equivalences()
        # Structurally identical ASTs under fresh names: served from the
        # verdict cache, never re-decided.
        ws.add("q(x, sum(y)) :- p(x, y)", name="a2")
        ws.add("q(x, count()) :- p(x, y)", name="b2")
        ws.equivalences()
        explanation = ws.explain("a2", "b2")
        assert explanation.cache_served is True
        assert explanation.decision_path == "cache"
        assert explanation.decided_in_call == 2
        fresh = ws.explain("a", "b")
        assert fresh.cache_served is False
        assert fresh.decided_in_call == 1
        assert ws.stats().verdict_cache_hits >= 1
        assert REGISTRY.get("session.verdict_cache.hits") > hits_before
        ws.close()

    def test_parallel_workspace_reports_worker_side_compiles(self):
        _cold()
        scenario = build_warehouse()
        with Workspace(workers=2) as ws:
            for name, query in scenario.queries.items():
                ws.add(query, name=name)
            ws.equivalences()
            stats = ws.stats()
        assert stats.pool_forks == 1
        worker_scope = stats.counters.get("worker", {})
        assert worker_scope.get("engine.kernel.compiles", 0) > 0
        assert REGISTRY.total("engine.kernel.compiles") > REGISTRY.get(
            "engine.kernel.compiles"
        )
        _cold()

    def test_stats_report_is_hierarchical(self):
        _cold()
        ws = Workspace()
        ws.add("q(x) :- p(x, y)", name="a")
        ws.add("q(x) :- p(x, y), r(x)", name="b")
        ws.equivalences()
        stats = ws.stats()
        assert set(stats.plan_cache) == {"entries", "builds", "hits"}
        assert "engine" in stats.counters
        rendered = stats.report()
        assert rendered.startswith("workspace:")
        assert "engine:" in rendered
        assert "plan_cache:" in rendered
        assert f"decided_cells: {stats.decided_cells}" in rendered
        ws.close()
        _cold()

    def test_sweep_group_label_names_members_and_bound(self):
        _cold()
        from test_sweep import _audit_catalog

        from repro.workloads.batch import plan_catalog_sweep

        plan = plan_catalog_sweep(_audit_catalog())
        assert plan.groups, "audit catalog must form at least one sweep group"
        label = sweep_group_label(plan.groups[0])
        assert "τ=" in label
        for name in plan.groups[0].queries:
            assert name in label
        ws = Workspace()
        for name, query in _audit_catalog().items():
            ws.add(query, name=name)
        ws.equivalences()
        paths = {ws.explain(*pair).decision_path for pair in ws.equivalences()}
        assert any(path.startswith("sweep:") for path in paths)
        ws.close()
        _cold()
