"""Tests for the SQL frontend."""

import pytest

from repro import Verdict, are_equivalent, evaluate, parse_database
from repro.core import as_count_query
from repro.errors import QuerySyntaxError
from repro.sql import SqlTranslator, parse_sql, sql_to_query

SCHEMA = {
    "sales": ["store", "product", "amount"],
    "returns": ["store", "product"],
    "discontinued": ["product"],
    "stores": ["store", "region"],
}


class TestSqlParser:
    def test_basic_select(self):
        statement = parse_sql("SELECT store, SUM(amount) FROM sales GROUP BY store")
        assert [c.column for c in statement.columns] == ["store"]
        assert statement.aggregate.function == "sum"
        assert statement.group_by[0].column == "store"

    def test_count_star_and_count_distinct(self):
        assert parse_sql("SELECT COUNT(*) FROM sales").aggregate.function == "count"
        statement = parse_sql("SELECT COUNT(DISTINCT product) FROM sales")
        assert statement.aggregate.function == "cntd"
        assert statement.aggregate.distinct

    def test_where_conditions(self):
        statement = parse_sql("SELECT store FROM sales WHERE amount > 10 AND store = 3")
        assert len(statement.comparisons) == 2

    def test_not_exists(self):
        statement = parse_sql(
            "SELECT store FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product)"
        )
        assert len(statement.not_exists) == 1
        assert statement.not_exists[0].table.table == "returns"

    def test_aliases(self):
        statement = parse_sql("SELECT s.store FROM sales AS s, stores t WHERE s.store = t.store")
        assert statement.tables[0].alias == "s"
        assert statement.tables[1].alias == "t"

    def test_nested_not_exists_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql(
                "SELECT store FROM sales WHERE NOT EXISTS (SELECT * FROM returns WHERE "
                "NOT EXISTS (SELECT * FROM discontinued))"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql("SELECT store FROM sales LIMIT 5")

    def test_round_trip_str(self):
        text = "SELECT store, SUM(amount) FROM sales WHERE amount > 10 GROUP BY store"
        assert "SUM" in str(parse_sql(text))


class TestTranslation:
    def test_group_by_aggregate(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE amount > 10 GROUP BY store", SCHEMA
        )
        assert query.is_aggregate and query.aggregate_function == "sum"
        assert query.is_quasilinear
        assert len(query.disjuncts[0].comparisons) == 1

    def test_join_via_equality(self):
        query = sql_to_query(
            "SELECT sales.store FROM sales, stores WHERE sales.store = stores.store",
            SCHEMA,
        )
        atoms = query.disjuncts[0].positive_atoms
        assert len(atoms) == 2
        sales_atom = next(a for a in atoms if a.predicate == "sales")
        stores_atom = next(a for a in atoms if a.predicate == "stores")
        assert sales_atom.arguments[0] == stores_atom.arguments[0]

    def test_not_exists_becomes_negated_atom(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store",
            SCHEMA,
        )
        negated = query.disjuncts[0].negated_atoms
        assert len(negated) == 1 and negated[0].predicate == "returns"

    def test_not_exists_with_constant_binding(self):
        query = sql_to_query(
            "SELECT product FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM discontinued WHERE discontinued.product = sales.product)",
            SCHEMA,
        )
        assert query.disjuncts[0].negated_atoms[0].predicate == "discontinued"

    def test_unbound_not_exists_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query(
                "SELECT store FROM sales WHERE NOT EXISTS (SELECT * FROM returns)", SCHEMA
            )

    def test_unknown_table_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT x FROM nowhere", SCHEMA)

    def test_ambiguous_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT store FROM sales, returns", SCHEMA)

    def test_unknown_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT sales.price FROM sales", SCHEMA)

    def test_translation_evaluates_correctly(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store",
            SCHEMA,
        )
        database = parse_database(
            "sales(1, 10, 5). sales(1, 11, 7). sales(2, 10, 3). returns(1, 11)."
        )
        assert evaluate(query, database) == {(1,): 5, (2,): 3}

    def test_count_star_translation(self):
        query = sql_to_query("SELECT store, COUNT(*) FROM sales GROUP BY store", SCHEMA)
        assert query.aggregate_function == "count"
        database = parse_database("sales(1, 10, 5). sales(1, 11, 7).")
        assert evaluate(query, database) == {(1,): 2}


class TestSqlEquivalence:
    def test_reordered_where_clauses_are_equivalent(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate(
            "SELECT store, SUM(amount) FROM sales WHERE amount > 10 AND NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store"
        )
        second = translator.translate(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.product = sales.product AND returns.store = sales.store) "
            "AND 10 < amount GROUP BY store"
        )
        assert are_equivalent(first, second).verdict is Verdict.EQUIVALENT

    def test_different_filters_are_not_equivalent(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate(
            "SELECT store, MAX(amount) FROM sales WHERE amount > 10 GROUP BY store"
        )
        second = translator.translate(
            "SELECT store, MAX(amount) FROM sales WHERE amount >= 10 GROUP BY store"
        )
        assert are_equivalent(first, second).verdict is Verdict.NOT_EQUIVALENT

    def test_sql_bag_semantics_via_count_queries(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate("SELECT store FROM sales")
        second = translator.translate(
            "SELECT sales.store FROM sales, stores WHERE sales.store = stores.store"
        )
        count_first, count_second = as_count_query(first), as_count_query(second)
        assert are_equivalent(count_first, count_second).verdict is Verdict.NOT_EQUIVALENT
