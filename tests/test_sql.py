"""Tests for the SQL frontend."""

import pytest

from repro import Verdict, are_equivalent, evaluate, parse_database
from repro.core import as_count_query
from repro.errors import QuerySyntaxError
from repro.sql import SqlTranslator, parse_sql, sql_to_query

SCHEMA = {
    "sales": ["store", "product", "amount"],
    "returns": ["store", "product"],
    "discontinued": ["product"],
    "stores": ["store", "region"],
}


class TestSqlParser:
    def test_basic_select(self):
        statement = parse_sql("SELECT store, SUM(amount) FROM sales GROUP BY store")
        assert [c.column for c in statement.columns] == ["store"]
        assert statement.aggregate.function == "sum"
        assert statement.group_by[0].column == "store"

    def test_count_star_and_count_distinct(self):
        assert parse_sql("SELECT COUNT(*) FROM sales").aggregate.function == "count"
        statement = parse_sql("SELECT COUNT(DISTINCT product) FROM sales")
        assert statement.aggregate.function == "cntd"
        assert statement.aggregate.distinct

    def test_where_conditions(self):
        statement = parse_sql("SELECT store FROM sales WHERE amount > 10 AND store = 3")
        assert len(statement.comparisons) == 2

    def test_not_exists(self):
        statement = parse_sql(
            "SELECT store FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product)"
        )
        assert len(statement.not_exists) == 1
        assert statement.not_exists[0].table.table == "returns"

    def test_aliases(self):
        statement = parse_sql("SELECT s.store FROM sales AS s, stores t WHERE s.store = t.store")
        assert statement.tables[0].alias == "s"
        assert statement.tables[1].alias == "t"

    def test_nested_not_exists_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql(
                "SELECT store FROM sales WHERE NOT EXISTS (SELECT * FROM returns WHERE "
                "NOT EXISTS (SELECT * FROM discontinued))"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql("SELECT store FROM sales LIMIT 5")

    def test_round_trip_str(self):
        text = "SELECT store, SUM(amount) FROM sales WHERE amount > 10 GROUP BY store"
        assert "SUM" in str(parse_sql(text))


class TestTranslation:
    def test_group_by_aggregate(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE amount > 10 GROUP BY store", SCHEMA
        )
        assert query.is_aggregate and query.aggregate_function == "sum"
        assert query.is_quasilinear
        assert len(query.disjuncts[0].comparisons) == 1

    def test_join_via_equality(self):
        query = sql_to_query(
            "SELECT sales.store FROM sales, stores WHERE sales.store = stores.store",
            SCHEMA,
        )
        atoms = query.disjuncts[0].positive_atoms
        assert len(atoms) == 2
        sales_atom = next(a for a in atoms if a.predicate == "sales")
        stores_atom = next(a for a in atoms if a.predicate == "stores")
        assert sales_atom.arguments[0] == stores_atom.arguments[0]

    def test_not_exists_becomes_negated_atom(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store",
            SCHEMA,
        )
        negated = query.disjuncts[0].negated_atoms
        assert len(negated) == 1 and negated[0].predicate == "returns"

    def test_not_exists_with_constant_binding(self):
        query = sql_to_query(
            "SELECT product FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM discontinued WHERE discontinued.product = sales.product)",
            SCHEMA,
        )
        assert query.disjuncts[0].negated_atoms[0].predicate == "discontinued"

    def test_unbound_not_exists_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query(
                "SELECT store FROM sales WHERE NOT EXISTS (SELECT * FROM returns)", SCHEMA
            )

    def test_unknown_table_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT x FROM nowhere", SCHEMA)

    def test_ambiguous_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT store FROM sales, returns", SCHEMA)

    def test_unknown_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_query("SELECT sales.price FROM sales", SCHEMA)

    def test_translation_evaluates_correctly(self):
        query = sql_to_query(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store",
            SCHEMA,
        )
        database = parse_database(
            "sales(1, 10, 5). sales(1, 11, 7). sales(2, 10, 3). returns(1, 11)."
        )
        assert evaluate(query, database) == {(1,): 5, (2,): 3}

    def test_count_star_translation(self):
        query = sql_to_query("SELECT store, COUNT(*) FROM sales GROUP BY store", SCHEMA)
        assert query.aggregate_function == "count"
        database = parse_database("sales(1, 10, 5). sales(1, 11, 7).")
        assert evaluate(query, database) == {(1,): 2}


class TestSqlEquivalence:
    def test_reordered_where_clauses_are_equivalent(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate(
            "SELECT store, SUM(amount) FROM sales WHERE amount > 10 AND NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.store = sales.store AND returns.product = sales.product) "
            "GROUP BY store"
        )
        second = translator.translate(
            "SELECT store, SUM(amount) FROM sales WHERE NOT EXISTS "
            "(SELECT * FROM returns WHERE returns.product = sales.product AND returns.store = sales.store) "
            "AND 10 < amount GROUP BY store"
        )
        assert are_equivalent(first, second).verdict is Verdict.EQUIVALENT

    def test_different_filters_are_not_equivalent(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate(
            "SELECT store, MAX(amount) FROM sales WHERE amount > 10 GROUP BY store"
        )
        second = translator.translate(
            "SELECT store, MAX(amount) FROM sales WHERE amount >= 10 GROUP BY store"
        )
        assert are_equivalent(first, second).verdict is Verdict.NOT_EQUIVALENT

    def test_sql_bag_semantics_via_count_queries(self):
        translator = SqlTranslator(SCHEMA)
        first = translator.translate("SELECT store FROM sales")
        second = translator.translate(
            "SELECT sales.store FROM sales, stores WHERE sales.store = stores.store"
        )
        count_first, count_second = as_count_query(first), as_count_query(second)
        assert are_equivalent(count_first, count_second).verdict is Verdict.NOT_EQUIVALENT


class TestCreateView:
    def test_parse_create_view(self):
        from repro.sql import CreateViewStatement, parse_sql_statement

        statement = parse_sql_statement(
            "CREATE VIEW v_sp (store, product, total) AS "
            "SELECT store, product, SUM(amount) FROM sales GROUP BY store, product"
        )
        assert isinstance(statement, CreateViewStatement)
        assert statement.name == "v_sp"
        assert statement.columns == ("store", "product", "total")
        assert "CREATE VIEW v_sp" in str(statement)

    def test_parse_sql_statement_still_parses_selects(self):
        from repro.sql import SelectStatement, parse_sql_statement

        statement = parse_sql_statement("SELECT store FROM sales")
        assert isinstance(statement, SelectStatement)

    def test_register_view_extends_schema(self):
        translator = SqlTranslator(SCHEMA)
        view = translator.register_view(
            "CREATE VIEW v_sp AS SELECT store, product, SUM(amount) "
            "FROM sales GROUP BY store, product"
        )
        assert view.is_aggregate and view.arity == 3
        assert translator.schema["v_sp"] == ["store", "product", "sum_amount"]
        # A later SELECT reads the view like a base table.
        query = translator.translate(
            "SELECT store, SUM(sum_amount) FROM v_sp GROUP BY store", name="rev"
        )
        assert "v_sp" in query.predicates()

    def test_adopt_view_makes_datalog_views_sql_readable(self):
        from repro import View, parse_query

        translator = SqlTranslator(SCHEMA)
        translator.adopt_view(
            View("sales_by_sp", parse_query("v(s, p, sum(a)) :- sales(s, p, a)"))
        )
        # Columns derive from the view head: s, p, sum_a.
        assert translator.schema["sales_by_sp"] == ["s", "p", "sum_a"]
        query = translator.translate(
            "SELECT s, SUM(sum_a) FROM sales_by_sp GROUP BY s", name="rev"
        )
        assert "sales_by_sp" in query.predicates()
        assert translator.view_catalog().get("sales_by_sp") is not None

    def test_adopt_view_seeding_and_guards(self):
        from repro import View, parse_query

        sold = View("sold", parse_query("v(s, p) :- sales(s, p, a)"))
        translator = SqlTranslator(SCHEMA, views=[sold])
        assert translator.schema["sold"] == ["s", "p"]
        with pytest.raises(QuerySyntaxError, match="collides"):
            translator.adopt_view(View("sales", parse_query("v(s) :- returns(s, p)")))
        with pytest.raises(QuerySyntaxError, match="lowercase"):
            # The SQL namespace is lowercase; a mixed-case predicate could
            # never be addressed from a SELECT (and would dodge the check).
            translator.adopt_view(View("Sold2", parse_query("v(s, p) :- sales(s, p, a)")))
        with pytest.raises(QuerySyntaxError, match="column"):
            translator.adopt_view(
                View("bad", parse_query("v(s, p) :- sales(s, p, a)")), columns=["only"]
            )

    def test_register_view_errors(self):
        translator = SqlTranslator(SCHEMA)
        with pytest.raises(QuerySyntaxError, match="collides"):
            translator.register_view("CREATE VIEW sales AS SELECT store FROM returns")
        with pytest.raises(QuerySyntaxError, match="column"):
            translator.register_view(
                "CREATE VIEW v (one) AS SELECT store, product FROM returns"
            )
        with pytest.raises(QuerySyntaxError, match="CREATE VIEW"):
            translator.register_view("SELECT store FROM sales")

    def test_round_trip_sql_views_feed_the_rewriting_engine(self):
        """CREATE VIEW -> register -> rewrite(): the SQL-defined view answers
        the SQL-defined report, verified equivalent and matching concretely."""
        from repro import rewrite

        translator = SqlTranslator(SCHEMA)
        translator.register_view(
            "CREATE VIEW v_sp (store, product, total) AS "
            "SELECT store, product, SUM(amount) FROM sales GROUP BY store, product"
        )
        query = translator.translate(
            "SELECT store, SUM(amount) FROM sales GROUP BY store", name="rev"
        )
        report = rewrite(query, translator.view_catalog(), seed=2)
        assert report.safe
        database = parse_database(
            "sales(1, 1, 10). sales(1, 1, 4). sales(1, 2, 7). sales(2, 1, 3)."
        )
        materialized = translator.view_catalog().materialize(database)
        for verified in report.safe:
            assert verified.result.verdict is Verdict.EQUIVALENT
            assert evaluate(verified.candidate.query, materialized) == evaluate(
                query, database
            )

    def test_round_trip_query_over_view_unfolds_to_base_equivalent(self):
        """SELECT over a registered view, unfolded, is equivalent to the
        direct base-table SELECT it abbreviates."""
        from repro import unfold_query

        translator = SqlTranslator(SCHEMA)
        translator.register_view(
            "CREATE VIEW kept AS SELECT store, product, amount FROM sales s "
            "WHERE NOT EXISTS (SELECT * FROM returns r WHERE r.store = s.store "
            "AND r.product = s.product)"
        )
        over_view = translator.translate(
            "SELECT store, SUM(amount) FROM kept GROUP BY store", name="rev"
        )
        direct = translator.translate(
            "SELECT store, SUM(amount) FROM sales s WHERE NOT EXISTS "
            "(SELECT * FROM returns r WHERE r.store = s.store AND r.product = s.product) "
            "GROUP BY store",
            name="rev",
        )
        unfolded = unfold_query(over_view, translator.view_catalog())
        assert are_equivalent(unfolded, direct).verdict is Verdict.EQUIVALENT

    def test_select_order_must_match_group_by_order(self):
        # The stored row order follows GROUP BY; a reordered SELECT list
        # would silently mislabel the columns, so it is rejected.
        translator = SqlTranslator(SCHEMA)
        with pytest.raises(QuerySyntaxError, match="GROUP BY order"):
            translator.register_view(
                "CREATE VIEW v (product, store, total) AS "
                "SELECT product, store, SUM(amount) FROM sales GROUP BY store, product"
            )
        # Matching orders register fine.
        view = translator.register_view(
            "CREATE VIEW v (store, product, total) AS "
            "SELECT store, product, SUM(amount) FROM sales GROUP BY store, product"
        )
        assert translator.schema["v"] == ["store", "product", "total"]
