"""Tests for repro.domains."""

from fractions import Fraction

import pytest

from repro.domains import Domain, normalize_value, value_sort_key
from repro.errors import DomainError


class TestDomainBasics:
    def test_integers_is_discrete(self):
        assert Domain.INTEGERS.is_discrete
        assert not Domain.INTEGERS.is_dense

    def test_rationals_is_dense(self):
        assert Domain.RATIONALS.is_dense
        assert not Domain.RATIONALS.is_discrete

    def test_integers_contains_int(self):
        assert Domain.INTEGERS.contains(7)
        assert Domain.INTEGERS.contains(-3)

    def test_integers_rejects_fraction(self):
        assert not Domain.INTEGERS.contains(Fraction(1, 2))

    def test_integers_rejects_bool(self):
        assert not Domain.INTEGERS.contains(True)

    def test_rationals_contains_fraction_and_int(self):
        assert Domain.RATIONALS.contains(Fraction(1, 2))
        assert Domain.RATIONALS.contains(5)


class TestNormalize:
    def test_normalize_int(self):
        assert Domain.INTEGERS.normalize(4) == 4

    def test_normalize_float_to_fraction(self):
        assert Domain.RATIONALS.normalize(0.5) == Fraction(1, 2)

    def test_normalize_whole_float_to_int(self):
        value = Domain.RATIONALS.normalize(3.0)
        assert value == 3
        assert isinstance(value, int)

    def test_normalize_fraction_in_integers_raises(self):
        with pytest.raises(DomainError):
            Domain.INTEGERS.normalize(Fraction(1, 3))

    def test_normalize_whole_fraction_in_integers(self):
        assert Domain.INTEGERS.normalize(Fraction(6, 2)) == 3

    def test_normalize_value_rejects_bool(self):
        with pytest.raises(DomainError):
            normalize_value(True)

    def test_normalize_value_rejects_string(self):
        with pytest.raises(DomainError):
            normalize_value("5")  # type: ignore[arg-type]


class TestMidpoints:
    def test_dense_midpoint_always_exists(self):
        assert Domain.RATIONALS.midpoint_exists(0, Fraction(1, 10**6))

    def test_discrete_midpoint_needs_gap_of_two(self):
        assert not Domain.INTEGERS.midpoint_exists(0, 1)
        assert Domain.INTEGERS.midpoint_exists(0, 2)

    def test_no_midpoint_when_not_increasing(self):
        assert not Domain.RATIONALS.midpoint_exists(2, 2)
        assert not Domain.INTEGERS.midpoint_exists(3, 1)

    def test_values_strictly_between_discrete(self):
        assert Domain.INTEGERS.values_strictly_between(0, 5) == 4
        assert Domain.INTEGERS.values_strictly_between(0, 1) == 0

    def test_values_strictly_between_dense_is_unbounded(self):
        assert Domain.RATIONALS.values_strictly_between(0, 1) is None

    def test_value_sort_key_orders_mixed_values(self):
        values = [Fraction(1, 2), 0, 2, Fraction(3, 2), 1]
        assert sorted(values, key=value_sort_key) == [0, Fraction(1, 2), 1, Fraction(3, 2), 2]
