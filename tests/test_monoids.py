"""Tests for the abelian monoids of Section 2, including hypothesis-checked laws."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.monoids import (
    BOT2_MONOID,
    INTEGER_ADDITION,
    MAX_MONOID,
    MIN_MONOID,
    NONZERO_MULTIPLICATION,
    PARITY_MONOID,
    RATIONAL_ADDITION,
    TOP2_MONOID,
    TopKMonoid,
)
from repro.errors import DomainError

rationals = st.fractions(max_denominator=8, min_value=-20, max_value=20)
integers = st.integers(min_value=-30, max_value=30)


class TestStructuralFlags:
    def test_groups(self):
        for monoid in (INTEGER_ADDITION, RATIONAL_ADDITION, PARITY_MONOID, NONZERO_MULTIPLICATION):
            assert monoid.is_group
            assert not monoid.is_idempotent

    def test_idempotent(self):
        for monoid in (MAX_MONOID, MIN_MONOID, TOP2_MONOID, BOT2_MONOID):
            assert monoid.is_idempotent
            assert not monoid.is_group

    def test_non_group_inverse_raises(self):
        with pytest.raises(DomainError):
            MAX_MONOID.inverse(3)

    def test_zero_has_no_multiplicative_inverse(self):
        with pytest.raises(DomainError):
            NONZERO_MULTIPLICATION.inverse(0)


class TestCheckLaws:
    def test_all_monoid_laws_on_samples(self):
        samples = {
            INTEGER_ADDITION: [-3, 0, 2, 7],
            RATIONAL_ADDITION: [Fraction(-1, 2), 0, Fraction(3, 4), 2],
            PARITY_MONOID: [0, 1],
            NONZERO_MULTIPLICATION: [Fraction(1, 2), 1, -2, 3],
            MAX_MONOID: [None, -1, 0, 5],
            MIN_MONOID: [None, -1, 0, 5],
            TOP2_MONOID: [(), (3,), (5, 2), (7, 1)],
            BOT2_MONOID: [(), (3,), (2, 5), (1, 7)],
        }
        for monoid, values in samples.items():
            assert monoid.check_laws(values) is None, monoid.name


class TestConcreteOperations:
    def test_parity_addition(self):
        assert PARITY_MONOID.operation(1, 1) == 0
        assert PARITY_MONOID.operation(1, 0) == 1
        assert PARITY_MONOID.inverse(1) == 1

    def test_max_with_bottom(self):
        assert MAX_MONOID.operation(None, 5) == 5
        assert MAX_MONOID.operation(3, None) == 3
        assert MAX_MONOID.operation(3, 5) == 5
        assert MAX_MONOID.neutral() is None

    def test_top2_examples_from_paper(self):
        # (5,⊥) ⊕ (2,1) = (5,2); (5,2) ⊕ (5,1) = (5,2); (5,⊥) ⊕ (5,⊥) = (5,⊥).
        assert TOP2_MONOID.operation((5,), (2, 1)) == (5, 2)
        assert TOP2_MONOID.operation((5, 2), (5, 1)) == (5, 2)
        assert TOP2_MONOID.operation((5,), (5,)) == (5,)

    def test_topk_contains(self):
        assert TOP2_MONOID.contains((5, 2))
        assert not TOP2_MONOID.contains((2, 5))
        assert not TOP2_MONOID.contains((5, 5))
        assert not TOP2_MONOID.contains((5, 4, 3))
        assert BOT2_MONOID.contains((2, 5))

    def test_topk_requires_positive_k(self):
        with pytest.raises(DomainError):
            TopKMonoid(0)

    def test_combine(self):
        assert INTEGER_ADDITION.combine([1, 2, 3]) == 6
        assert MAX_MONOID.combine([]) is None
        assert TOP2_MONOID.combine([(1,), (4,), (4,), (2,)]) == (4, 2)

    def test_subtract(self):
        assert INTEGER_ADDITION.subtract(5, 3) == 2
        assert NONZERO_MULTIPLICATION.subtract(6, 3) == 2
        assert PARITY_MONOID.subtract(0, 1) == 1

    def test_rational_addition_normalizes(self):
        assert RATIONAL_ADDITION.operation(Fraction(1, 2), Fraction(1, 2)) == 1
        assert isinstance(RATIONAL_ADDITION.operation(Fraction(1, 2), Fraction(1, 2)), int)

    def test_contains(self):
        assert INTEGER_ADDITION.contains(5) and not INTEGER_ADDITION.contains(Fraction(1, 2))
        assert NONZERO_MULTIPLICATION.contains(Fraction(1, 3)) and not NONZERO_MULTIPLICATION.contains(0)
        assert PARITY_MONOID.contains(1) and not PARITY_MONOID.contains(2)


class TestHypothesisLaws:
    @given(a=integers, b=integers, c=integers)
    def test_integer_addition_laws(self, a, b, c):
        monoid = INTEGER_ADDITION
        assert monoid.operation(a, b) == monoid.operation(b, a)
        assert monoid.operation(monoid.operation(a, b), c) == monoid.operation(a, monoid.operation(b, c))
        assert monoid.operation(a, monoid.neutral()) == a
        assert monoid.operation(a, monoid.inverse(a)) == monoid.neutral()

    @given(a=rationals, b=rationals, c=rationals)
    def test_rational_addition_laws(self, a, b, c):
        monoid = RATIONAL_ADDITION
        assert monoid.operation(a, b) == monoid.operation(b, a)
        assert Fraction(monoid.operation(monoid.operation(a, b), c)) == Fraction(
            monoid.operation(a, monoid.operation(b, c))
        )

    @given(
        a=st.one_of(st.none(), rationals),
        b=st.one_of(st.none(), rationals),
        c=st.one_of(st.none(), rationals),
    )
    def test_max_monoid_laws(self, a, b, c):
        monoid = MAX_MONOID
        assert monoid.operation(a, b) == monoid.operation(b, a)
        assert monoid.operation(monoid.operation(a, b), c) == monoid.operation(a, monoid.operation(b, c))
        assert monoid.operation(a, a) == a
        assert monoid.operation(a, monoid.neutral()) == a

    @settings(max_examples=60)
    @given(values=st.lists(st.lists(rationals, max_size=4), min_size=1, max_size=4))
    def test_topk_associativity_and_idempotency(self, values):
        monoid = TOP2_MONOID
        elements = [monoid.combine([(v,) for v in sorted(set(vs), reverse=True)]) for vs in values]
        total_left = monoid.combine(elements)
        total_right = monoid.combine(reversed(elements))
        assert total_left == total_right
        for element in elements:
            assert monoid.operation(element, element) == element

    @given(a=st.sampled_from([Fraction(-3), Fraction(1, 2), 1, 2, -1]), b=st.sampled_from([Fraction(-3), Fraction(1, 2), 1, 2, -1]))
    def test_multiplicative_group_laws(self, a, b):
        monoid = NONZERO_MULTIPLICATION
        assert Fraction(monoid.operation(a, b)) == Fraction(a) * Fraction(b)
        assert Fraction(monoid.operation(a, monoid.inverse(a))) == 1
