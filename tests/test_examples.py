"""The example scripts must run end-to-end without errors."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 4
    assert (EXAMPLES_DIR / "quickstart.py").exists()
