"""Tests for the session-first public API (`repro.session.Workspace`).

The load-bearing property is the *incremental/from-scratch differential*:
adding queries to a workspace over several calls and asking for
``equivalences()`` must yield the same matrix a one-shot
``equivalence_matrix`` computes over the final catalog — cell for cell, on
every scenario catalog, serially and through the multiprocessing executor.

Verdicts and methods are always byte-identical.  Witness databases are
byte-identical whenever the shared BASE recipe of the session matches the
one-shot run's (the held-out variants below arrange exactly that); when the
context *grows* between calls, a cell settled early may carry a witness
found under the smaller BASE, so the staged variants check witnesses
semantically: present iff present, and genuinely distinguishing.
"""

from __future__ import annotations

import pytest

from repro import Verdict, View, Workspace, parse_query
from repro.core.bounded import SharedBaseContext
from repro.engine import evaluate
from repro.errors import QuerySyntaxError, ReproError, RewritingError
from repro.workloads import build_view_scenario, build_warehouse, equivalence_matrix


def scenario_catalogs() -> dict[str, dict]:
    return {
        "warehouse": build_warehouse().queries,
        "views": build_view_scenario().queries,
    }


def assert_cells_match(incremental, scratch, queries, *, strict_witnesses: bool):
    __tracebackhide__ = True
    assert incremental.keys() == scratch.keys()
    for pair, result in incremental.items():
        expected = scratch[pair]
        assert result.verdict is expected.verdict, pair
        assert result.method == expected.method, pair
        assert (result.counterexample is None) == (expected.counterexample is None), pair
        if result.counterexample is None:
            continue
        witness = result.counterexample.database
        assert (witness is None) == (expected.counterexample.database is None), pair
        if strict_witnesses:
            assert witness == expected.counterexample.database, pair
        elif witness is not None:
            assert evaluate(queries[pair[0]], witness) != evaluate(
                queries[pair[1]], witness
            ), pair


def context_preserving_holdout(catalog) -> str:
    """A query whose removal leaves the catalog's shared BASE recipe intact —
    held out so the strict differential compares identical enumerations."""
    full = SharedBaseContext.from_catalog(catalog.values())
    for name in sorted(catalog):
        rest = [query for other, query in catalog.items() if other != name]
        if SharedBaseContext.from_catalog(rest) == full:
            return name
    pytest.skip("catalog has no context-preserving holdout")


class TestFrontDoor:
    def test_add_accepts_datalog_query_and_sql(self):
        ws = Workspace(schema={"sales": ["store", "product", "amount"]})
        assert ws.add("q(x, sum(y)) :- p(x, y)") == "q"
        assert ws.add(parse_query("r(x) :- p(x, y)")) == "r"
        name = ws.add("SELECT store, SUM(amount) FROM sales GROUP BY store", name="rev")
        assert name == "rev"
        assert ws["rev"].is_aggregate
        assert len(ws) == 3

    def test_names_deduplicate_and_explicit_duplicates_raise(self):
        ws = Workspace()
        assert ws.add("q(x) :- p(x, y)") == "q"
        assert ws.add("q(x) :- p(x, y), r(x)") == "q_2"
        ws.add("q(x) :- r(x)", name="named")
        with pytest.raises(ReproError, match="already has a query named"):
            ws.add("q(x) :- r(x)", name="named")

    def test_add_rejects_junk(self):
        with pytest.raises(ReproError, match="expects a Query"):
            Workspace().add(42)  # type: ignore[arg-type]

    def test_discard_drops_query_and_cells(self):
        ws = Workspace()
        ws.add("q(x) :- p(x, y)", name="a")
        ws.add("q(x) :- p(x, z)", name="b")
        assert len(ws.equivalences()) == 1
        ws.discard("b")
        assert ws.equivalences() == {}
        with pytest.raises(ReproError, match="no query named"):
            ws.discard("b")

    def test_register_view_three_forms(self):
        ws = Workspace(schema={"sales": ["store", "product", "amount"]})
        ws.register_view(View("sold", parse_query("v(s, p) :- sales(s, p, a)")))
        ws.register_view("kept", "v(s, p, a) :- sales(s, p, a), not returns(s, p)")
        ws.register_view(
            "CREATE VIEW by_store (store, total) AS "
            "SELECT store, SUM(amount) FROM sales GROUP BY store"
        )
        assert set(ws.views.names) == {"sold", "kept", "by_store"}

    def test_datalog_view_is_readable_from_sql(self):
        ws = Workspace(schema={"sales": ["store", "product", "amount"]})
        ws.register_view(
            View("sales_by_sp", parse_query("v(s, p, sum(a)) :- sales(s, p, a)"))
        )
        # Columns derive from the view head: s, p, sum_a.
        query = ws.add("SELECT s, SUM(sum_a) FROM sales_by_sp GROUP BY s")
        assert ws[query].predicates() == {"sales_by_sp"}

    def test_register_view_name_clash(self):
        ws = Workspace(schema={"sales": ["store", "product", "amount"]})
        ws.register_view(View("sold", parse_query("v(s, p) :- sales(s, p, a)")))
        with pytest.raises(RewritingError, match="duplicate view name"):
            ws.register_view(View("sold", parse_query("v(p) :- sales(s, p, a)")))
        with pytest.raises(QuerySyntaxError, match="collides"):
            # Clash with a schema base table is the SQL layer's verdict.
            ws.register_view(View("sales", parse_query("v(p) :- returns(s, p)")))

    def test_closed_workspace_refuses_work(self):
        with Workspace() as ws:
            ws.add("q(x) :- p(x, y)")
        assert ws.closed
        with pytest.raises(ReproError, match="closed"):
            ws.add("q(x) :- p(x, z)")
        with pytest.raises(ReproError, match="closed"):
            ws.equivalences()


class TestDeltaDifferential:
    @pytest.mark.parametrize("catalog_name", sorted(scenario_catalogs()))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_holdout_add_matches_scratch_exactly(self, catalog_name, workers):
        """Warm a workspace on all-but-one query, add the last, and demand
        the final matrix byte-matches a from-scratch run — witnesses
        included (the holdout preserves the shared BASE recipe)."""
        catalog = scenario_catalogs()[catalog_name]
        holdout = context_preserving_holdout(catalog)
        with Workspace(workers=workers, seed=7) as ws:
            for name, query in catalog.items():
                if name != holdout:
                    ws.add(query, name=name)
            warm = ws.equivalences()
            assert len(warm) == (len(catalog) - 1) * (len(catalog) - 2) // 2
            ws.add(catalog[holdout], name=holdout)
            final = ws.equivalences()
            delta_decided = ws.stats().decided_cells - len(warm)
            assert delta_decided <= len(catalog) - 1
        scratch = equivalence_matrix(catalog, workers=workers, seed=7)
        assert_cells_match(final, scratch, catalog, strict_witnesses=True)

    @pytest.mark.parametrize("catalog_name", sorted(scenario_catalogs()))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_at_a_time_matches_scratch(self, catalog_name, workers):
        """Grow the catalog one query per call; the final matrix matches the
        from-scratch run in verdicts and methods cell for cell, and every
        witness genuinely distinguishes its pair."""
        catalog = scenario_catalogs()[catalog_name]
        with Workspace(workers=workers, seed=7) as ws:
            for name, query in catalog.items():
                ws.add(query, name=name)
                ws.equivalences()
            final = ws.equivalences()
        scratch = equivalence_matrix(catalog, workers=workers, seed=7)
        assert_cells_match(final, scratch, catalog, strict_witnesses=False)

    def test_delta_only_decides_new_cells(self):
        catalog = scenario_catalogs()["views"]
        with Workspace(seed=3) as ws:
            for name, query in catalog.items():
                ws.add(query, name=name)
            first = ws.equivalences()
            decided = ws.stats().decided_cells
            assert decided == len(first)
            again = ws.equivalences()
            assert ws.stats().decided_cells == decided  # nothing re-decided
            assert again.keys() == first.keys()

    def test_structural_verdict_cache_serves_renamed_duplicates(self):
        with Workspace(seed=5) as ws:
            ws.add("q(x, sum(y)) :- p(x, y)", name="a")
            ws.add("q(x, sum(y)) :- p(x, y), not r(x)", name="b")
            ws.equivalences()
            # The same ASTs under fresh names: the (a2, b2) cell is the
            # structurally identical pair, served from the verdict cache.
            ws.add("q(x, sum(y)) :- p(x, y)", name="a2")
            ws.add("q(x, sum(y)) :- p(x, y), not r(x)", name="b2")
            results = ws.equivalences()
            assert ws.stats().verdict_cache_hits >= 1
            assert results[("a2", "b2")].verdict is results[("a", "b")].verdict
            assert results[("a2", "b2")].method == results[("a", "b")].method

    def test_verdict_cache_eviction_is_lru_not_insertion_order(self, monkeypatch):
        """Overflow must evict the least-recently-*used* entries: a pair the
        session keeps serving survives eviction no matter how early it was
        inserted (before the fix, the oldest-*inserted* quarter was dropped,
        so the hottest entries were exactly the ones lost)."""
        from repro.core.equivalence import EquivalenceResult
        from repro.domains import Domain
        from repro.session import workspace as workspace_module

        monkeypatch.setattr(workspace_module, "_VERDICT_CACHE_LIMIT", 4)
        with Workspace(workers=1, store=False) as ws:
            for index in range(5):
                ws.add(f"q(x) :- r{index}(x)", name=f"q{index}")
            fabricated = EquivalenceResult(Verdict.UNKNOWN, "fabricated", Domain.RATIONALS)
            filled = [("q0", "q1"), ("q0", "q2"), ("q0", "q3"), ("q1", "q2")]
            for pair in filled:
                ws._cache_verdict(pair, fabricated)
            # Settle every cell except (q0, q1), then ask for the matrix:
            # the one remaining cell is served from the structural cache —
            # a *hit*, which must refresh the entry's recency.
            names = sorted(ws.queries)
            for position, name_a in enumerate(names):
                for name_b in names[position + 1 :]:
                    if (name_a, name_b) != ("q0", "q1"):
                        ws._results[(name_a, name_b)] = fabricated
            ws.equivalences()
            assert ws.stats().verdict_cache_hits == 1
            # The next insertion overflows the (limit 4) cache.  LRU order
            # after the hit is (q0,q2), (q0,q3), (q1,q2), (q0,q1): the
            # refreshed oldest-inserted entry survives and (q0, q2) goes.
            ws._cache_verdict(("q1", "q3"), fabricated)
            assert (ws["q0"], ws["q1"]) in ws._verdict_cache
            assert (ws["q0"], ws["q2"]) not in ws._verdict_cache


class TestSessionRewriting:
    def test_report_matches_one_shot_rewrite(self):
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)
        from repro import rewrite

        one_shot = rewrite(
            scenario.queries["total_revenue"],
            scenario.views,
            database=scenario.database,
            seed=3,
        )
        with Workspace(seed=3) as ws:
            for view in scenario.views:
                ws.register_view(view)
            session_report = ws.rewrite(
                scenario.queries["total_revenue"], database=scenario.database
            )
        assert [v.candidate.name for v in session_report.safe] == [
            v.candidate.name for v in one_shot.safe
        ]
        assert [v.estimated_cost for v in session_report.safe] == [
            v.estimated_cost for v in one_shot.safe
        ]
        assert session_report.direct_cost == one_shot.direct_cost
        for verified in session_report.safe:
            assert verified.result.verdict is Verdict.EQUIVALENT

    def test_repeated_rewrites_hit_the_cache(self):
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)
        with Workspace(seed=3) as ws:
            for view in scenario.views:
                ws.register_view(view)
            first = ws.rewrite(scenario.queries["total_revenue"])
            assert ws.stats().rewrite_cache_hits == 0
            second = ws.rewrite(
                scenario.queries["total_revenue"], database=scenario.database
            )
            assert ws.stats().rewrite_cache_hits == 1
            assert {v.candidate.name for v in second.safe} == {
                v.candidate.name for v in first.safe
            }
            # The cached call still ranks: costs are filled and ascending.
            costs = [v.estimated_cost for v in second.safe]
            assert all(cost is not None for cost in costs)
            assert costs == sorted(costs)

    def test_registering_a_view_invalidates_rewrite_cache(self):
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)
        with Workspace(seed=3) as ws:
            ws.register_view(
                View("sales_by_sp", parse_query("v(s, p, sum(a)) :- sales(s, p, a)"))
            )
            before = ws.rewrite(scenario.queries["total_revenue"])
            ws.register_view(
                View("sales_by_s", parse_query("v(s, sum(a)) :- sales(s, p, a)"))
            )
            after = ws.rewrite(scenario.queries["total_revenue"])
            assert ws.stats().rewrite_cache_hits == 0  # cache was dropped
            assert {v.candidate.name for v in after.safe} > {
                v.candidate.name for v in before.safe
            }

    def test_cached_reports_do_not_alias_across_databases(self):
        """Re-ranking against a second database must not rewrite the costs
        inside a report already handed out (the cache stores the verification
        outcomes; each report gets its own wrappers)."""
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)
        bigger = build_view_scenario(stores=5, products=8, sales_per_store=12, seed=7)
        with Workspace(seed=3) as ws:
            for view in scenario.views:
                ws.register_view(view)
            first = ws.rewrite(scenario.queries["total_revenue"], database=scenario.database)
            first_costs = [v.estimated_cost for v in first.safe]
            second = ws.rewrite(scenario.queries["total_revenue"], database=bigger.database)
            assert ws.stats().rewrite_cache_hits == 1
            assert [v.estimated_cost for v in first.safe] == first_costs
            assert [v.estimated_cost for v in second.safe] != first_costs

    def test_failed_view_registration_preserves_caches(self):
        scenario = build_view_scenario(stores=3, products=4, sales_per_store=6, seed=9)
        with Workspace(seed=3) as ws:
            ws.register_view(
                View("sales_by_sp", parse_query("v(s, p, sum(a)) :- sales(s, p, a)"))
            )
            ws.rewrite(scenario.queries["total_revenue"])
            with pytest.raises(RewritingError, match="duplicate view name"):
                ws.register_view("sales_by_sp", "v(s) :- sales(s, p, a)")
            with pytest.raises(RewritingError, match="duplicate view name"):
                ws.register_view(View("sales_by_sp", parse_query("v(s) :- sales(s, p, a)")))
            ws.rewrite(scenario.queries["total_revenue"])
            assert ws.stats().rewrite_cache_hits == 1  # cache survived the failures

    def test_mixed_case_views_stay_rewriting_only(self):
        """PR 4 accepted any valid view name; the session keeps that for the
        rewriting catalog and only gates *SQL visibility* on lowercase names
        (the SQL parser lowercases every table reference)."""
        from repro import rewrite

        view = View("SoldPairs", parse_query("v(s, p) :- sales(s, p, a)"))
        query = parse_query("assortment(s, cntd(p)) :- sales(s, p, a)")
        report = rewrite(query, [view], seed=1)  # the one-shot shim path
        assert report.safe
        with Workspace(schema={"sales": ["store", "product", "amount"]}) as ws:
            ws.register_view(view)
            assert "SoldPairs" in ws.views.names
            assert ws.rewrite(query).safe
            with pytest.raises(QuerySyntaxError, match="unknown table"):
                ws.add("SELECT s FROM SoldPairs")  # not SQL-addressable

    def test_rewrite_honours_session_decision_settings(self):
        """The session's decision knobs reach rewrite verification too: with
        normalize=False, a candidate whose unfolding forms a pinned-sum /
        count pair must stay UNVERIFIED — exactly as the same session's
        equivalences() would leave that pair UNKNOWN."""
        view = View("unit_rows", parse_query("v(s, p, a, u) :- sales(s, p, a), u = 1"))
        query = parse_query("volume(s, count()) :- sales(s, p, a)")
        candidate = parse_query("volume(s, sum(u)) :- unit_rows(s, p, a, u)")

        def verify_with(normalize):
            with Workspace(seed=2, normalize=normalize) as ws:
                ws.register_view(view)
                engine = ws._rewriting_engine()
                (outcome,) = engine.verify(query, [engine.make_candidate(query, candidate)], seed=2)
                return outcome.result
        assert verify_with(True).verdict is Verdict.EQUIVALENT
        assert verify_with(False).verdict is Verdict.UNKNOWN

    def test_rewrite_rejects_view_queries(self):
        with Workspace() as ws:
            ws.register_view(View("sold", parse_query("v(s, p) :- sales(s, p, a)")))
            with pytest.raises(RewritingError, match="view predicate"):
                ws.rewrite("q(s, cntd(p)) :- sold(s, p)")


def _echo_task(task):
    return task


def _failing_task(task):
    raise RuntimeError(f"worker blew up on {task}")


class TestPersistentPool:
    def test_failed_drain_discards_the_pool(self):
        """A worker exception mid-run must not wedge the session: the broken
        pool is discarded and the next run forks a fresh one."""
        from repro.parallel import PersistentProcessExecutor

        executor = PersistentProcessExecutor(2)
        try:
            # imap_unordered: order may vary, compare as multisets.
            assert sorted(executor.run(_echo_task, [1, 2, 3, 4])) == [1, 2, 3, 4]
            assert sorted(executor.run(_echo_task, [5, 6, 7])) == [5, 6, 7]
            forks = executor.forks
            with pytest.raises(RuntimeError, match="blew up"):
                executor.run(_failing_task, [1, 2, 3, 4])
            assert not executor.alive  # broken pool was discarded
            assert sorted(executor.run(_echo_task, [8, 9, 10])) == [8, 9, 10]
            assert executor.forks == forks + 1  # healed by re-forking
        finally:
            executor.close()
    def test_pool_forks_once_across_calls(self):
        catalog = scenario_catalogs()["views"]
        with Workspace(workers=2, seed=7) as ws:
            for name, query in catalog.items():
                ws.add(query, name=name)
            ws.equivalences()
            forks_after_first = ws.stats().pool_forks
            assert forks_after_first <= 1
            ws.add("extra(s, sum(a)) :- sales(s, p, a), premium_store(s)")
            ws.equivalences()
            scenario = build_view_scenario()
            for view in scenario.views:
                ws.register_view(view)
            ws.rewrite(catalog["total_revenue"])
            ws.rewrite(catalog["kept_revenue"])
            # The pool forks lazily on the first call with shardable work and
            # is then reused: never more than one fork per session.
            assert ws.stats().pool_forks <= 1
            assert ws.stats().pool_forks >= forks_after_first
        executor = ws.executor
        assert executor is not None and not executor.alive

    def test_serial_workspace_has_no_pool(self):
        with Workspace(workers=1) as ws:
            assert ws.executor is None
            assert ws.stats().pool_forks == 0


class TestShims:
    def test_equivalence_matrix_shim_matches_workspace(self):
        queries = {
            "orig": parse_query("q(x, sum(y)) :- p(x, y), not r(x)"),
            "renamed": parse_query("q(x, sum(z)) :- p(x, z), not r(x)"),
            "weaker": parse_query("q(x, sum(y)) :- p(x, y)"),
        }
        shim = equivalence_matrix(queries, seed=11)
        with Workspace(seed=11) as ws:
            for name, query in queries.items():
                ws.add(query, name=name)
            direct = ws.equivalences()
        assert_cells_match(shim, direct, queries, strict_witnesses=True)

    def test_shim_docstrings_point_at_the_session(self):
        from repro import rewrite

        assert "Workspace" in equivalence_matrix.__doc__
        assert "Workspace" in rewrite.__doc__
