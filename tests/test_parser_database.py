"""Tests for the Datalog parser, the query builder and databases."""

from fractions import Fraction

import pytest

from repro.datalog import (
    Comparison,
    ComparisonOp,
    Constant,
    Database,
    QueryBuilder,
    Variable,
    parse_database,
    parse_query,
)
from repro.domains import Domain
from repro.errors import DomainError, MalformedQueryError, QuerySyntaxError


class TestParser:
    def test_simple_aggregate_query(self):
        query = parse_query("q(x, sum(y)) :- p(x, y)")
        assert query.name == "q"
        assert query.head_terms == (Variable("x"),)
        assert query.aggregate_function == "sum"

    def test_nullary_count_with_and_without_parens(self):
        assert parse_query("q(x, count()) :- p(x, y)").aggregate_function == "count"
        assert parse_query("q(x, count) :- p(x, y)").aggregate_function == "count"
        assert parse_query("q(x, parity) :- p(x, y)").aggregate_function == "parity"

    def test_negation_forms(self):
        for negation in ("not r(x)", "!r(x)", "~r(x)"):
            query = parse_query(f"q(x, count()) :- p(x), {negation}")
            assert len(query.disjuncts[0].negated_atoms) == 1

    def test_disjunction(self):
        query = parse_query("q(x) :- p(x) ; r(x), x > 0 | s(x, x)")
        assert len(query.disjuncts) == 3

    def test_comparisons_and_constants(self):
        query = parse_query("q(x, max(y)) :- p(x, y), y >= 3, x != 1/2")
        comparisons = query.disjuncts[0].comparisons
        assert Comparison(Variable("y"), ComparisonOp.GE, Constant(3)) in comparisons
        assert Comparison(Variable("x"), ComparisonOp.NE, Constant(Fraction(1, 2))) in comparisons

    def test_negative_and_decimal_constants(self):
        query = parse_query("q(x) :- p(x), x > -2, x < 2.5")
        constants = {c.value for c in query.constants()}
        assert -2 in constants and Fraction(5, 2) in constants

    def test_alternate_rule_arrow(self):
        assert parse_query("q(x) <- p(x)").name == "q"

    def test_non_aggregate_query(self):
        query = parse_query("q(x, y) :- p(x, y)")
        assert not query.is_aggregate
        assert len(query.head_terms) == 2

    def test_top2_query(self):
        assert parse_query("q(top2(y)) :- p(y)").aggregate_function == "top2"

    def test_two_aggregates_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(sum(y), max(y)) :- p(y)")

    def test_unsafe_query_rejected(self):
        with pytest.raises(Exception):
            parse_query("q(x) :- p(y)")

    def test_syntax_error_reports_position(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(x) :- p(x) @ r(x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(x) :- p(x) extra(y)")

    def test_negated_comparison_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("q(x) :- p(x), not x > 1")

    def test_parse_database(self):
        database = parse_database("p(1, 2). p(2, 3). r(1).")
        assert len(database) == 3
        assert database.contains("p", (1, 2))
        assert database.contains("r", (1,))

    def test_parse_database_requires_ground_facts(self):
        with pytest.raises(QuerySyntaxError):
            parse_database("p(x).")


class TestBuilder:
    def test_builder_matches_parser(self):
        built = (
            QueryBuilder("q", head=["x"], aggregate=("sum", ["y"]))
            .atom("p", "x", "y")
            .negated("r", "x")
            .compare("y", ">", 0)
            .build()
        )
        parsed = parse_query("q(x, sum(y)) :- p(x, y), not r(x), y > 0")
        assert built.head_terms == parsed.head_terms
        assert built.aggregate == parsed.aggregate
        assert set(built.disjuncts[0].literals) == set(parsed.disjuncts[0].literals)

    def test_builder_disjuncts(self):
        query = (
            QueryBuilder("q", head=["x"])
            .atom("p", "x")
            .disjunct()
            .atom("r", "x")
            .build()
        )
        assert len(query.disjuncts) == 2

    def test_builder_empty_disjunct_rejected(self):
        with pytest.raises(MalformedQueryError):
            QueryBuilder("q", head=["x"]).disjunct()

    def test_builder_aggregate_arguments_must_be_variables(self):
        with pytest.raises(MalformedQueryError):
            QueryBuilder("q", head=["x"], aggregate=("sum", [1]))

    def test_builder_equal_shortcut(self):
        query = QueryBuilder("q", head=["x"]).atom("p", "x", "y").equal("y", 3).build()
        assert Comparison(Variable("y"), ComparisonOp.EQ, Constant(3)) in query.disjuncts[0].comparisons


class TestDatabase:
    def test_carrier(self):
        database = parse_database("p(1, 2). r(3).")
        assert database.carrier() == frozenset({1, 2, 3})
        assert database.carrier_size == 3

    def test_relation_lookup(self):
        database = parse_database("p(1, 2). p(3, 4).")
        assert database.relation("p") == frozenset({(1, 2), (3, 4)})
        assert database.relation("missing") == frozenset()

    def test_set_algebra(self):
        first = parse_database("p(1). p(2).")
        second = parse_database("p(2). p(3).")
        assert len(first.union(second)) == 3
        assert first.intersection(second) == parse_database("p(2).")
        assert first.difference(second) == parse_database("p(1).")
        assert parse_database("p(1).").issubset(first)

    def test_equality_and_hash(self):
        assert parse_database("p(1). p(2).") == parse_database("p(2). p(1).")
        assert hash(parse_database("p(1).")) == hash(parse_database("p(1)."))

    def test_from_relations(self):
        database = Database.from_relations({"p": [(1, 2), (3, 4)], "r": [(5,)]})
        assert len(database) == 3
        assert database.to_relations()["p"] == {(1, 2), (3, 4)}

    def test_add_facts_and_restrict(self):
        database = parse_database("p(1). r(2).")
        extended = database.add_facts([("p", (9,))])
        assert extended.contains("p", (9,))
        assert extended.restrict_to_predicates(["p"]).predicates() == frozenset({"p"})

    def test_duplicate_facts_collapse(self):
        assert len(Database([("p", (1,)), ("p", (1,))])) == 1

    def test_check_domain(self):
        database = Database([("p", (Fraction(1, 2),))])
        database.check_domain(Domain.RATIONALS)
        with pytest.raises(DomainError):
            database.check_domain(Domain.INTEGERS)

    def test_values_normalized(self):
        database = Database([("p", (2.0,))])
        assert database.contains("p", (2,))
