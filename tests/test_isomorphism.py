"""Tests for homomorphisms and isomorphisms between conjunctive queries."""

import pytest

from repro import Domain, parse_query
from repro.core import (
    are_isomorphic,
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    homomorphisms,
    isomorphisms,
)
from repro.datalog import Variable
from repro.errors import MalformedQueryError


class TestHomomorphisms:
    def test_renaming_is_a_homomorphism_both_ways(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), r(y)")
        second = parse_query("q(x, sum(y)) :- p(x, y), r(y)")
        assert has_homomorphism(first, second)
        assert has_homomorphism(second, first)

    def test_head_must_be_preserved(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, sum(y)) :- p(y, x)")
        assert not has_homomorphism(first, second)

    def test_homomorphism_into_larger_query(self):
        # Classic CQ containment direction: the smaller (less constrained)
        # query maps into the more constrained one.
        small = parse_query("q(x) :- p(x, y)")
        large = parse_query("q(x) :- p(x, y), p(x, z), r(z)")
        assert has_homomorphism(small, large)
        assert not has_homomorphism(large, small)

    def test_negated_atoms_must_map_to_negated_atoms(self):
        with_negation = parse_query("q(x, count()) :- p(x), not r(x)")
        without = parse_query("q(x, count()) :- p(x)")
        assert not has_homomorphism(with_negation, without)
        assert not has_homomorphism(without, with_negation) or True  # positive part maps
        # The positive-only query maps into the negated one (its atoms are a subset).
        assert has_homomorphism(without, with_negation)

    def test_comparisons_must_be_entailed(self):
        strict = parse_query("q(x, max(y)) :- p(x, y), y > 2")
        loose = parse_query("q(x, max(y)) :- p(x, y), y > 0")
        # loose's comparison (y > 0) is entailed by strict's (y > 2): map loose -> strict.
        assert has_homomorphism(loose, strict)
        assert not has_homomorphism(strict, loose)

    def test_constants_map_to_themselves(self):
        first = parse_query("q(count()) :- p(3, y)")
        second = parse_query("q(count()) :- p(4, y)")
        assert not has_homomorphism(first, second)

    def test_aggregate_functions_must_match(self):
        first = parse_query("q(x, sum(y)) :- p(x, y)")
        second = parse_query("q(x, max(y)) :- p(x, y)")
        assert not has_homomorphism(first, second)

    def test_homomorphism_with_variable_bound_by_equality(self):
        first = parse_query("q(x) :- p(x, y), z = y, z > 0")
        second = parse_query("q(x) :- p(x, y), y > 0")
        assert has_homomorphism(first, second)

    def test_disjunctive_queries_rejected(self):
        disjunctive = parse_query("q(x) :- p(x) ; r(x)")
        conjunctive = parse_query("q(x) :- p(x)")
        with pytest.raises(MalformedQueryError):
            find_homomorphism(disjunctive, conjunctive)

    def test_enumeration_finds_multiple_homomorphisms(self):
        source = parse_query("q(count()) :- p(y)")
        target = parse_query("q(count()) :- p(y), p(z)")
        assert len(list(homomorphisms(source, target))) == 2

    def test_homomorphism_substitution_is_correct(self):
        source = parse_query("q(x, sum(y)) :- p(x, y), r(w), w > 1")
        target = parse_query("q(x, sum(y)) :- p(x, y), r(v), v > 2")
        substitution = find_homomorphism(source, target)
        assert substitution is not None
        assert substitution[Variable("w")] == Variable("v")


class TestIsomorphisms:
    def test_renamed_queries_are_isomorphic(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), not r(y), y > 0")
        second = parse_query("q(x, sum(y)) :- p(x, y), not r(y), 0 < y")
        assert are_isomorphic(first, second)

    def test_reordered_literals_are_isomorphic(self):
        first = parse_query("q(x, max(y)) :- p(x, y), s(x, z), z < y")
        second = parse_query("q(x, max(y)) :- s(x, w), p(x, y), w < y")
        assert are_isomorphic(first, second)

    def test_homomorphic_but_not_isomorphic(self):
        small = parse_query("q(x) :- p(x, y)")
        large = parse_query("q(x) :- p(x, y), r(y)")
        assert has_homomorphism(small, large)
        assert not are_isomorphic(small, large)

    def test_extra_atom_breaks_isomorphism(self):
        first = parse_query("q(x, count()) :- p(x, y)")
        second = parse_query("q(x, count()) :- p(x, y), p(x, z)")
        assert not are_isomorphic(first, second)

    def test_different_comparison_strength_breaks_isomorphism(self):
        first = parse_query("q(x, max(y)) :- p(x, y), y > 0")
        second = parse_query("q(x, max(y)) :- p(x, y), y >= 0")
        assert not are_isomorphic(first, second)

    def test_isomorphism_mapping_is_a_bijection(self):
        first = parse_query("q(x, sum(y)) :- p(x, y), s(x, z)")
        second = parse_query("q(x, sum(y)) :- p(x, y), s(x, w)")
        mapping = find_isomorphism(first, second)
        assert mapping is not None
        assert mapping[Variable("z")] == Variable("w")
        images = [v for v in mapping.values() if isinstance(v, Variable)]
        assert len(images) == len(set(images))

    def test_isomorphisms_enumeration(self):
        first = parse_query("q(count()) :- p(y), p(z)")
        second = parse_query("q(count()) :- p(a), p(b)")
        assert len(list(isomorphisms(first, second))) == 2

    def test_negation_pattern_matters(self):
        first = parse_query("q(x, count()) :- p(x, y), not r(x)")
        second = parse_query("q(x, count()) :- p(x, y), not r(y)")
        assert not are_isomorphic(first, second)

    def test_paper_non_isomorphic_equivalent_example(self):
        # Theorem 7.2 "(2) => (1)" direction: for a non singleton-determining
        # function the queries q(cntd(d)) <- p(d) ∧ p(d') with different head
        # constants are equivalent but not isomorphic.  Here we only check the
        # isomorphism part: the heads differ, so no isomorphism exists.
        first = parse_query("q(1, cntd(y)) :- p(1), p(2), y = 1")
        second = parse_query("q(2, cntd(y)) :- p(1), p(2), y = 2")
        assert not are_isomorphic(first, second)
